//! The shared baseline-allocator engine.
//!
//! One engine, five policies: the [`Policy`](crate::Policy) selects block
//! metadata scheme, WAL behaviour, and threading model, while the pool
//! layout, extent manager (with in-place region headers), tcaches, and
//! rtree are identical across baselines — and deliberately identical in
//! *mechanism* to NVAlloc's, so benchmark deltas isolate the policies the
//! paper studies.

use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use nvalloc::api::{AllocThread, PmAllocator};
use nvalloc::internals::{
    BitmapLayout, GeometryTable, LargeAlloc, LargeConfig, Owner, PmBitmap, RTree, VehId,
    REGION_BYTES,
};
use nvalloc::telemetry::MetricsSnapshot;
use nvalloc::{
    class_size, size_to_class, ClassId, PmError, PmOffset, PmResult, NUM_CLASSES, SLAB_SIZE,
};
use nvalloc_pmem::{FlushKind, PmThread, PmemPool};

use crate::policy::{BaselineKind, MetaScheme, Policy, WalScheme};

/// Magic tag of a baseline-formatted pool (per kind, so recovery can sanity
/// check).
pub(crate) fn pool_magic(kind: BaselineKind) -> u64 {
    0x4241_5345_0000_0000 | kind as u64
}

pub(crate) const SLAB_MAGIC: u32 = 0xBA5E_B001;

/// Slab-header scheme codes.
pub(crate) const SCHEME_BITMAP: u8 = 1;
pub(crate) const SCHEME_STATE: u8 = 2;
pub(crate) const SCHEME_LIST: u8 = 3;

#[derive(Debug, Clone)]
pub(crate) struct BLayout {
    pub roots: PmOffset,
    pub roots_count: usize,
    pub wal_base: PmOffset,
    pub wal_bytes_per_arena: usize,
    pub region_table: PmOffset,
    pub region_table_bytes: usize,
    pub heap_base: PmOffset,
    pub heap_bytes: usize,
}

pub(crate) const WAL_ENTRIES_PER_ARENA: usize = 4096;
pub(crate) const WAL_ENTRY_BYTES: usize = 32;
/// Micro-log slots per thread (PAllocator scheme).
pub(crate) const MICRO_SLOTS: usize = 8;
/// Micro-logs reserved per arena region for per-thread WALs.
pub(crate) const MICRO_LOGS: usize = 512;

impl BLayout {
    pub(crate) fn compute(pool_size: usize, arenas: usize, roots: usize) -> PmResult<BLayout> {
        let roots_off = 64u64;
        let roots_end = roots_off + roots as u64 * 8;
        let wal_base = (roots_end + 63) & !63;
        let wal_bytes_per_arena = (WAL_ENTRIES_PER_ARENA * WAL_ENTRY_BYTES)
            .max(MICRO_LOGS * MICRO_SLOTS * WAL_ENTRY_BYTES);
        let wal_end = wal_base + (arenas * wal_bytes_per_arena) as u64;
        let region_table = (wal_end + 63) & !63;
        let region_table_bytes = 8 + 8 * (pool_size / REGION_BYTES + 2);
        let heap_base = (region_table + region_table_bytes as u64 + SLAB_SIZE as u64 - 1)
            & !(SLAB_SIZE as u64 - 1);
        if heap_base as usize + REGION_BYTES > pool_size {
            return Err(PmError::OutOfMemory { requested: REGION_BYTES });
        }
        Ok(BLayout {
            roots: roots_off,
            roots_count: roots,
            wal_base,
            wal_bytes_per_arena,
            region_table,
            region_table_bytes,
            heap_base,
            heap_bytes: pool_size - heap_base as usize,
        })
    }
}

/// Slab geometry per scheme.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BGeom {
    pub data_offset: usize,
    pub nblocks: usize,
    /// Bitmap layout (bitmap scheme only).
    pub bitmap: Option<BitmapLayout>,
}

pub(crate) fn geom_for(scheme: u8, class: ClassId, geoms: &GeometryTable) -> BGeom {
    let bs = class_size(class);
    match scheme {
        SCHEME_BITMAP => {
            let g = geoms.of(class);
            BGeom { data_offset: g.data_offset, nblocks: g.nblocks, bitmap: Some(g.bitmap) }
        }
        SCHEME_STATE => {
            // 2 B of state per block in the header (PAllocator page headers).
            let mut nb = (SLAB_SIZE - 64) / bs;
            loop {
                let doff = (64 + 2 * nb + 63) & !63;
                let fit = (SLAB_SIZE - doff) / bs;
                if fit >= nb {
                    return BGeom { data_offset: doff, nblocks: nb, bitmap: None };
                }
                nb = fit;
            }
        }
        SCHEME_LIST => BGeom { data_offset: 64, nblocks: (SLAB_SIZE - 64) / bs, bitmap: None },
        _ => unreachable!("bad scheme"),
    }
}

/// Volatile slab state.
#[derive(Debug)]
pub(crate) struct BSlab {
    pub off: PmOffset,
    pub class: ClassId,
    #[allow(dead_code)] // kept for slab-destruction policies and debugging
    pub veh: VehId,
    pub geom: BGeom,
    /// Volatile unavailability bitmap (allocated or tcache-reserved).
    taken: Vec<u64>,
    pub nfree: usize,
    /// Embedded scheme: never-yet-used frontier.
    bump: usize,
    /// Embedded scheme: volatile stack of freed block indices.
    free_stack: Vec<u32>,
    /// Embedded scheme: what the persistent chain head *should* be.
    phead: PmOffset,
    /// Embedded scheme (batched): frees not yet persisted.
    pending: Vec<u32>,
}

/// A WAL entry as seen by recovery.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BWalRecovered {
    pub op: u8,
    pub addr: PmOffset,
    pub dest: PmOffset,
    pub committed: bool,
}

impl BSlab {
    /// Recovery shell: geometry known, occupancy to be filled in by the
    /// per-baseline recovery strategy.
    pub(crate) fn new_shell(off: PmOffset, class: ClassId, veh: VehId, geom: BGeom) -> BSlab {
        BSlab::new(off, class, veh, geom)
    }

    /// Mark every block taken (nvm_malloc's deferred reconstruction).
    pub(crate) fn mark_all(&mut self) {
        for i in 0..self.geom.nblocks {
            if !self.is_taken(i) {
                self.mark(i);
            }
        }
        self.bump = self.geom.nblocks;
    }

    /// Clear every mark (GC rebuild).
    pub(crate) fn clear_all(&mut self) {
        self.taken.fill(0);
        self.nfree = self.geom.nblocks;
        self.free_stack.clear();
        self.bump = 0;
    }

    /// Mark one block taken (recovery).
    pub(crate) fn mark_index(&mut self, i: usize) {
        if !self.is_taken(i) {
            self.mark(i);
        }
    }

    /// After recovery marking, disable the bump frontier so free blocks are
    /// found by scan (bitmap schemes) or the free stack (embedded).
    pub(crate) fn seal_bump(&mut self) {
        self.bump = self.geom.nblocks;
    }

    /// Rebuild the embedded free stack from the unmarked blocks.
    pub(crate) fn rebuild_free_stack(&mut self) {
        self.free_stack =
            (0..self.geom.nblocks).filter(|&i| !self.is_taken(i)).map(|i| i as u32).collect();
    }

    fn new(off: PmOffset, class: ClassId, veh: VehId, geom: BGeom) -> BSlab {
        BSlab {
            off,
            class,
            veh,
            geom,
            taken: vec![0; geom.nblocks.div_ceil(64).max(1)],
            nfree: geom.nblocks,
            bump: 0,
            free_stack: Vec::new(),
            phead: 0,
            pending: Vec::new(),
        }
    }

    pub(crate) fn block_addr(&self, i: usize) -> PmOffset {
        self.off + (self.geom.data_offset + i * class_size(self.class)) as u64
    }

    pub(crate) fn block_index(&self, addr: PmOffset) -> Option<usize> {
        let rel = addr.checked_sub(self.off + self.geom.data_offset as u64)?;
        let bs = class_size(self.class) as u64;
        if rel % bs != 0 {
            return None;
        }
        let i = (rel / bs) as usize;
        (i < self.geom.nblocks).then_some(i)
    }

    pub(crate) fn is_taken(&self, i: usize) -> bool {
        self.taken[i / 64] >> (i % 64) & 1 == 1
    }

    fn mark(&mut self, i: usize) {
        debug_assert!(!self.is_taken(i));
        self.taken[i / 64] |= 1 << (i % 64);
        self.nfree -= 1;
    }

    pub(crate) fn unmark(&mut self, i: usize) {
        debug_assert!(self.is_taken(i));
        self.taken[i / 64] &= !(1 << (i % 64));
        self.nfree += 1;
    }

    /// Volatile reservation of one block.
    fn take(&mut self) -> Option<usize> {
        if let Some(i) = self.free_stack.pop() {
            self.mark(i as usize);
            return Some(i as usize);
        }
        if self.bump < self.geom.nblocks {
            let i = self.bump;
            self.bump += 1;
            self.mark(i);
            return Some(i);
        }
        // Bitmap/state schemes track frees through `taken` directly.
        if self.nfree > 0 {
            for (w, word) in self.taken.iter_mut().enumerate() {
                if *word != u64::MAX {
                    let bit = word.trailing_ones() as usize;
                    let i = w * 64 + bit;
                    if i >= self.geom.nblocks {
                        return None;
                    }
                    *word |= 1 << bit;
                    self.nfree -= 1;
                    return Some(i);
                }
            }
        }
        None
    }

    #[allow(dead_code)] // baselines keep empty slabs segregated (§3.2)
    fn completely_free(&self) -> bool {
        self.nfree == self.geom.nblocks
    }
}

/// One heap: a set of slabs and per-class freelists. Shared arenas wrap it
/// in a mutex; PAllocator-style threads own one (still mutexed so remote
/// frees can reach it).
#[derive(Debug, Default)]
pub(crate) struct BHeap {
    pub slabs: HashMap<PmOffset, BSlab>,
    pub freelist: Vec<VecDeque<PmOffset>>,
}

impl BHeap {
    pub(crate) fn new() -> BHeap {
        BHeap {
            slabs: HashMap::new(),
            freelist: (0..NUM_CLASSES).map(|_| VecDeque::new()).collect(),
        }
    }
}

/// Per-arena WAL ring (PerOp schemes). The lock models PMDK's shared redo
/// lanes.
#[derive(Debug)]
pub(crate) struct BWal {
    base: PmOffset,
    cap: usize,
    next: usize,
}

impl BWal {
    fn entry_off(&self, slot: usize) -> PmOffset {
        self.base + (slot * WAL_ENTRY_BYTES) as u64
    }

    /// Write a redo entry into a *fixed* lane slot (PMDK lane model).
    #[allow(clippy::too_many_arguments)]
    fn write_entry_at(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        slot: usize,
        addr: PmOffset,
        dest: PmOffset,
        size: u32,
        alloc: bool,
    ) -> PmOffset {
        let off = self.entry_off(slot);
        pool.write_u64(off, addr);
        pool.write_u64(off + 8, dest);
        pool.write_u64(off + 16, (size as u64) << 32 | if alloc { 1 } else { 2 });
        pool.write_u64(off + 24, 0);
        pool.charge_store(t, off, WAL_ENTRY_BYTES);
        pool.flush(t, off, WAL_ENTRY_BYTES, FlushKind::Wal);
        pool.fence(t);
        off
    }

    /// Write a redo entry; returns its offset for the later finish mark.
    fn write_entry(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        addr: PmOffset,
        dest: PmOffset,
        size: u32,
        alloc: bool,
    ) -> PmOffset {
        let slot = self.next % self.cap;
        self.next += 1;
        let off = self.entry_off(slot);
        pool.write_u64(off, addr);
        pool.write_u64(off + 8, dest);
        pool.write_u64(off + 16, (size as u64) << 32 | if alloc { 1 } else { 2 });
        pool.write_u64(off + 24, 0); // finish mark cleared
        pool.charge_store(t, off, WAL_ENTRY_BYTES);
        pool.flush(t, off, WAL_ENTRY_BYTES, FlushKind::Wal);
        pool.fence(t);
        off
    }
}

/// Mark a WAL entry finished (commit mark or invalidation — either way a
/// second flush of the entry's own cache line: the §3.1 reflush).
pub(crate) fn finish_entry(pool: &PmemPool, t: &mut PmThread, entry: PmOffset) {
    pool.write_u64(entry + 24, 1);
    pool.charge_store(t, entry + 24, 8);
    pool.flush(t, entry + 24, 8, FlushKind::Wal);
    pool.fence(t);
}

#[derive(Debug)]
pub(crate) struct BArena {
    pub heap: Arc<Mutex<BHeap>>,
    pub wal: Mutex<BWal>,
    pub threads: AtomicUsize,
    pub wal_next_micro: AtomicUsize,
    pub wal_base: PmOffset,
}

impl BArena {
    /// Re-open after recovery; the WAL ring restarts at slot 0.
    pub(crate) fn reopen(wal_base: PmOffset) -> BArena {
        BArena {
            heap: Arc::new(Mutex::new(BHeap::new())),
            wal: Mutex::new(BWal { base: wal_base + 64, cap: WAL_ENTRIES_PER_ARENA - 2, next: 0 }),
            threads: AtomicUsize::new(0),
            wal_next_micro: AtomicUsize::new(0),
            wal_base,
        }
    }
}

/// Wall-clock wait/hold accounting for the engine's shared mutexes (the
/// global large-allocator lock, arena/thread heap locks, and WAL lane
/// locks). NVAlloc's sharded large allocator carries the same probes, so
/// the Fig. 22 harness can print contended nanoseconds per op for every
/// series.
#[derive(Debug, Default)]
pub(crate) struct BLockStats {
    pub wait_ns: AtomicU64,
    pub hold_ns: AtomicU64,
    pub acquires: AtomicU64,
    pub contended: AtomicU64,
}

/// A mutex guard that credits its hold time to [`BLockStats`] on drop.
pub(crate) struct TimedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    stats: &'a BLockStats,
    held: Instant,
}

impl<T> Deref for TimedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TimedGuard<'_, T> {
    fn drop(&mut self) {
        self.stats.hold_ns.fetch_add(self.held.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Lock `m`, recording whether the acquisition contended and how long it
/// waited; the returned guard times the hold.
fn timed_lock<'a, T>(stats: &'a BLockStats, m: &'a Mutex<T>) -> TimedGuard<'a, T> {
    stats.acquires.fetch_add(1, Ordering::Relaxed);
    let wait = Instant::now();
    let guard = match m.try_lock() {
        Some(g) => g,
        None => {
            stats.contended.fetch_add(1, Ordering::Relaxed);
            m.lock()
        }
    };
    stats.wait_ns.fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
    TimedGuard { guard, stats, held: Instant::now() }
}

pub(crate) struct BInner {
    pub pool: Arc<PmemPool>,
    pub kind: BaselineKind,
    pub policy: Policy,
    pub layout: BLayout,
    pub geoms: GeometryTable,
    pub rtree: Arc<RTree>,
    pub large: Mutex<LargeAlloc>,
    pub arenas: Vec<Arc<BArena>>,
    /// PAllocator mode: one heap per thread, registered here for cross-
    /// thread frees and recovery.
    pub thread_heaps: Mutex<Vec<Arc<Mutex<BHeap>>>>,
    pub live_bytes: AtomicUsize,
    pub locks: BLockStats,
    #[allow(dead_code)] // reserved for cross-arena ordering diagnostics
    pub seq: AtomicU64,
}

impl std::fmt::Debug for BInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BInner").field("kind", &self.kind).finish_non_exhaustive()
    }
}

/// A baseline allocator handle (clone freely).
#[derive(Debug, Clone)]
pub struct Baseline(pub(crate) Arc<BInner>);

impl Baseline {
    /// Format `pool` for baseline `kind` and return the allocator.
    ///
    /// # Errors
    /// [`PmError::OutOfMemory`] if the pool is too small.
    pub fn create(pool: Arc<PmemPool>, kind: BaselineKind) -> PmResult<Baseline> {
        Self::create_with_roots(pool, kind, 1 << 16)
    }

    /// [`Baseline::create`] with a custom root-slot count.
    ///
    /// # Errors
    /// [`PmError::OutOfMemory`] if the pool is too small.
    pub fn create_with_roots(
        pool: Arc<PmemPool>,
        kind: BaselineKind,
        roots: usize,
    ) -> PmResult<Baseline> {
        let policy = kind.policy();
        let layout = BLayout::compute(pool.size(), policy.arenas, roots)?;
        pool.fill_bytes(0, layout.heap_base as usize, 0);
        let mut t = pool.register_thread();

        let rtree = Arc::new(RTree::new());
        let large = LargeAlloc::new(
            &pool,
            LargeConfig {
                heap_base: layout.heap_base,
                heap_bytes: layout.heap_bytes,
                log_bookkeeping: false, // in-place region headers: §3.3
                booklog_base: 0,
                booklog_bytes: 0,
                booklog_stripes: 1,
                booklog_gc: false,
                slow_gc_threshold: usize::MAX,
                decay_ms: 10_000,
                region_table_base: layout.region_table,
                region_table_bytes: layout.region_table_bytes,
                shard_tag: 0, // baselines run a single unsharded large allocator
            },
            Arc::clone(&rtree),
        );

        let arenas = (0..policy.arenas)
            .map(|i| {
                let wal_base = layout.wal_base + (i * layout.wal_bytes_per_arena) as u64;
                Arc::new(BArena {
                    heap: Arc::new(Mutex::new(BHeap::new())),
                    // The first cache line of the region is the PMDK-style
                    // lane header; entries start behind it.
                    wal: Mutex::new(BWal {
                        base: wal_base + 64,
                        cap: WAL_ENTRIES_PER_ARENA - 2,
                        next: 0,
                    }),
                    threads: AtomicUsize::new(0),
                    wal_next_micro: AtomicUsize::new(0),
                    wal_base,
                })
            })
            .collect();

        pool.write_u64(8, roots as u64);
        pool.persist_u64(&mut t, 0, pool_magic(kind), FlushKind::Meta);
        pool.flush(&mut t, 8, 8, FlushKind::Meta);
        Ok(Baseline(Arc::new(BInner {
            pool,
            kind,
            policy,
            layout,
            geoms: GeometryTable::new(1), // sequential bitmaps only
            rtree,
            large: Mutex::new(large),
            arenas,
            thread_heaps: Mutex::new(Vec::new()),
            live_bytes: AtomicUsize::new(0),
            locks: BLockStats::default(),
            seq: AtomicU64::new(1),
        })))
    }

    /// Which baseline this is.
    pub fn kind(&self) -> BaselineKind {
        self.0.kind
    }
}

impl PmAllocator for Baseline {
    fn name(&self) -> String {
        self.0.policy.name.to_string()
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.0.pool
    }

    fn thread(&self) -> Box<dyn AllocThread> {
        let inner = Arc::clone(&self.0);
        let (arena, own_heap, heap_idx) = if inner.policy.per_thread_heaps {
            let heap = Arc::new(Mutex::new(BHeap::new()));
            let mut reg = inner.thread_heaps.lock();
            reg.push(Arc::clone(&heap));
            let idx = reg.len() - 1;
            drop(reg);
            (Arc::clone(&inner.arenas[0]), Some(heap), idx as u32)
        } else {
            let arena = inner
                .arenas
                .iter()
                .min_by_key(|a| a.threads.load(Ordering::Relaxed))
                .expect("arena")
                .clone();
            arena.threads.fetch_add(1, Ordering::Relaxed);
            (arena, None, 0)
        };
        let micro = arena.wal_next_micro.fetch_add(1, Ordering::Relaxed) % MICRO_LOGS;
        let micro_base = arena.wal_base + (micro * MICRO_SLOTS * WAL_ENTRY_BYTES) as u64;
        Box::new(BaselineThread {
            pm: self.0.pool.register_thread(),
            inner,
            arena,
            own_heap,
            heap_idx,
            tcache: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            micro_base,
            micro_next: 0,
        })
    }

    fn root_offset(&self, i: usize) -> PmOffset {
        assert!(i < self.0.layout.roots_count, "root {i} out of range");
        self.0.layout.roots + (i * 8) as u64
    }

    fn root_count(&self) -> usize {
        self.0.layout.roots_count
    }

    fn heap_mapped_bytes(&self) -> usize {
        self.0.large.lock().mapped_bytes()
    }

    fn peak_mapped_bytes(&self) -> usize {
        self.0.large.lock().peak_mapped()
    }

    fn live_bytes(&self) -> usize {
        self.0.live_bytes.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> MetricsSnapshot {
        // Baselines carry no internal telemetry beyond the shared-mutex
        // probes; surface those so the Fig. 22 harness can report lock
        // wait per op for every series.
        let mut s = MetricsSnapshot::default();
        let l = &self.0.locks;
        s.lock_wait_ns = l.wait_ns.load(Ordering::Relaxed);
        s.lock_hold_ns = l.hold_ns.load(Ordering::Relaxed);
        s.large_lock_acquires = l.acquires.load(Ordering::Relaxed);
        s.large_lock_contended = l.contended.load(Ordering::Relaxed);
        s
    }

    fn exit(&self) {
        // Flush slab headers/metadata so a clean image is recoverable.
        let pool = &self.0.pool;
        let mut t = pool.register_thread();
        let flush_heap = |heap: &BHeap, t: &mut PmThread| {
            for s in heap.slabs.values() {
                pool.flush(t, s.off, s.geom.data_offset, FlushKind::Meta);
            }
        };
        for a in &self.0.arenas {
            flush_heap(&a.heap.lock(), &mut t);
        }
        for h in self.0.thread_heaps.lock().iter() {
            flush_heap(&h.lock(), &mut t);
        }
        pool.flush(&mut t, self.0.layout.roots, self.0.layout.roots_count * 8, FlushKind::Meta);
        pool.fence(&mut t);
    }
}

/// A per-thread baseline handle.
#[derive(Debug)]
pub struct BaselineThread {
    pub(crate) inner: Arc<BInner>,
    pm: PmThread,
    arena: Arc<BArena>,
    /// PAllocator mode: this thread's private heap.
    own_heap: Option<Arc<Mutex<BHeap>>>,
    heap_idx: u32,
    tcache: Vec<Vec<PmOffset>>,
    micro_base: PmOffset,
    micro_next: usize,
}

impl BaselineThread {
    fn policy(&self) -> Policy {
        self.inner.policy
    }

    /// Write + flush a micro-log entry (PAllocator); returns its offset.
    fn micro_entry(&mut self, addr: PmOffset, dest: PmOffset, size: u32, alloc: bool) -> PmOffset {
        let pool = &self.inner.pool;
        let slot = self.micro_next % MICRO_SLOTS;
        self.micro_next += 1;
        let off = self.micro_base + (slot * WAL_ENTRY_BYTES) as u64;
        pool.write_u64(off, addr);
        pool.write_u64(off + 8, dest);
        pool.write_u64(off + 16, (size as u64) << 32 | if alloc { 1 } else { 2 });
        pool.write_u64(off + 24, 0);
        pool.charge_store(&mut self.pm, off, WAL_ENTRY_BYTES);
        pool.flush(&mut self.pm, off, WAL_ENTRY_BYTES, FlushKind::Wal);
        pool.fence(&mut self.pm);
        off
    }

    fn wal_begin(
        &mut self,
        addr: PmOffset,
        dest: PmOffset,
        size: u32,
        alloc: bool,
    ) -> Vec<PmOffset> {
        match self.policy().wal {
            WalScheme::None => Vec::new(),
            WalScheme::ThreadMicroInvalidate => vec![self.micro_entry(addr, dest, size, alloc)],
            WalScheme::PerOpCommit | WalScheme::PerOpInvalidate => {
                let pool = Arc::clone(&self.inner.pool);
                // PMDK-style transactions update their lane header at tx
                // begin (and again at commit) and snapshot the destination
                // into an undo record besides the redo entry; the commit
                // invalidates every record. The lane-header line is the
                // per-op reflush hotspot of §3.1.
                if self.policy().wal == WalScheme::PerOpCommit {
                    self.bump_lane(&pool);
                }
                let inner = Arc::clone(&self.inner);
                let wal_arc = Arc::clone(&self.arena);
                let mut wal = timed_lock(&inner.locks, &wal_arc.wal);
                let mut entries = Vec::with_capacity(1 + self.policy().extra_tx_entries);
                if self.policy().wal == WalScheme::PerOpCommit {
                    // PMDK lanes re-use *fixed* undo/redo slots for every
                    // transaction (the lane log is reset at commit), so each
                    // operation re-flushes the same lane-log lines — the
                    // §3.1 pathology at its purest.
                    let extra = self.policy().extra_tx_entries;
                    for k in 0..extra {
                        entries.push(wal.write_entry_at(
                            &pool,
                            &mut self.pm,
                            k,
                            dest,
                            dest,
                            8,
                            alloc,
                        ));
                    }
                    entries.push(wal.write_entry_at(
                        &pool,
                        &mut self.pm,
                        extra,
                        addr,
                        dest,
                        size,
                        alloc,
                    ));
                } else {
                    for _ in 0..self.policy().extra_tx_entries {
                        entries.push(wal.write_entry(&pool, &mut self.pm, dest, dest, 8, alloc));
                    }
                    entries.push(wal.write_entry(&pool, &mut self.pm, addr, dest, size, alloc));
                }
                entries
            }
        }
    }

    fn wal_finish(&mut self, entries: Vec<PmOffset>) {
        let pool = Arc::clone(&self.inner.pool);
        let had = !entries.is_empty();
        for off in entries {
            finish_entry(&pool, &mut self.pm, off);
        }
        if had && self.policy().wal == WalScheme::PerOpCommit {
            self.bump_lane(&pool);
        }
    }

    /// Write + flush the arena's lane header (tx stage change).
    fn bump_lane(&mut self, pool: &PmemPool) {
        let lane = self.arena.wal_base;
        let v = pool.read_u64(lane).wrapping_add(1);
        pool.write_u64(lane, v);
        pool.charge_store(&mut self.pm, lane, 8);
        pool.flush(&mut self.pm, lane, 8, FlushKind::Wal);
        pool.fence(&mut self.pm);
    }

    /// Persist block metadata for an alloc/free, per scheme. Caller holds
    /// the owning heap's lock (needed for embedded chain state).
    fn persist_block_meta(&mut self, slab: &mut BSlab, idx: usize, alloc: bool) {
        let pool = Arc::clone(&self.inner.pool);
        match self.policy().meta {
            MetaScheme::SeqBitmap => {
                let bm = PmBitmap::new(slab.off + 64, slab.geom.bitmap.expect("bitmap scheme"));
                if self.policy().strong {
                    if alloc {
                        bm.set_persist(&pool, &mut self.pm, idx);
                    } else {
                        bm.clear_persist(&pool, &mut self.pm, idx);
                    }
                } else {
                    bm.write_volatile(&pool, idx, alloc);
                }
            }
            MetaScheme::StateArray => {
                let off = slab.off + 64 + (idx * 2) as u64;
                pool.write_u16(off, if alloc { 1 } else { 0 });
                pool.charge_store(&mut self.pm, off, 2);
                if self.policy().strong {
                    pool.flush(&mut self.pm, off, 2, FlushKind::Meta);
                    pool.fence(&mut self.pm);
                }
            }
            MetaScheme::EmbeddedList { .. } => {
                // Allocation consumes from the volatile view only (the
                // stale persistent chain is repaired by post-crash GC);
                // frees are handled by the caller, which owns the
                // batching/availability ordering.
            }
        }
    }

    /// Link freed blocks onto the persistent chain: one next-pointer write
    /// and flush per block, one header-head update and flush per call (the
    /// per-free header flush is Makalu's reflush hotspot).
    fn push_chain(&mut self, pool: &PmemPool, slab: &mut BSlab, blocks: &[u32]) {
        for &i in blocks {
            let baddr = slab.block_addr(i as usize);
            pool.write_u64(baddr, slab.phead);
            pool.charge_store(&mut self.pm, baddr, 8);
            pool.flush(&mut self.pm, baddr, 8, FlushKind::Meta);
            slab.phead = baddr;
        }
        // Header word 2 holds the chain head.
        pool.write_u64(slab.off + 16, slab.phead);
        pool.charge_store(&mut self.pm, slab.off + 16, 8);
        pool.flush(&mut self.pm, slab.off + 16, 8, FlushKind::Meta);
        pool.fence(&mut self.pm);
    }

    /// The heap that owns `heap_idx` (per-thread mode) or this arena's heap.
    fn heap_for(&self, idx: u32) -> Arc<Mutex<BHeap>> {
        if self.policy().per_thread_heaps {
            Arc::clone(&self.inner.thread_heaps.lock()[idx as usize])
        } else {
            // Arena heaps are found through the arena list; idx stores the
            // arena id in that mode.
            unreachable!("arena mode resolves heaps via arena list")
        }
    }

    fn refill(&mut self, class: ClassId) -> PmResult<()> {
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        let heap_arc;
        let mut heap = if let Some(h) = &self.own_heap {
            heap_arc = Arc::clone(h);
            timed_lock(&inner.locks, &heap_arc)
        } else {
            timed_lock(&inner.locks, &self.arena.heap)
        };
        // Try existing freelist slabs.
        let cap = self.policy().tcache_cap.max(1);
        let mut filled = 0;
        while filled < cap {
            let Some(&soff) = heap.freelist[class].front() else { break };
            let slab = heap.slabs.get_mut(&soff).expect("freelist slab");
            match slab.take() {
                Some(i) => {
                    self.tcache[class].push(slab.block_addr(i));
                    filled += 1;
                    if slab.nfree == 0 {
                        heap.freelist[class].pop_front();
                    }
                }
                None => {
                    heap.freelist[class].pop_front();
                }
            }
        }
        if filled > 0 {
            return Ok(());
        }
        // New slab (static segregation: never repurpose another class's).
        let (veh, off) = timed_lock(&inner.locks, &inner.large).alloc_aligned(
            pool,
            &mut self.pm,
            SLAB_SIZE,
            SLAB_SIZE,
            true,
        )?;
        let scheme = match self.policy().meta {
            MetaScheme::SeqBitmap => SCHEME_BITMAP,
            MetaScheme::StateArray => SCHEME_STATE,
            MetaScheme::EmbeddedList { .. } => SCHEME_LIST,
        };
        let geom = geom_for(scheme, class, &inner.geoms);
        // Persistent slab header: word0 magic|class|scheme, word2 chain head.
        pool.write_u64(off, SLAB_MAGIC as u64 | (class as u64) << 32 | (scheme as u64) << 48);
        pool.write_u64(off + 16, 0);
        if let Some(bm) = geom.bitmap {
            PmBitmap::new(off + 64, bm).clear_all(pool);
        } else if scheme == SCHEME_STATE {
            pool.fill_bytes(off + 64, 2 * geom.nblocks, 0);
        }
        pool.charge_store(&mut self.pm, off, geom.data_offset);
        pool.flush(&mut self.pm, off, geom.data_offset, FlushKind::Meta);
        pool.fence(&mut self.pm);

        let owner_idx =
            if self.policy().per_thread_heaps { self.heap_idx } else { self.arena_id() };
        inner.rtree.insert_range(
            off,
            SLAB_SIZE,
            Owner::Slab { slab: off, arena: owner_idx }.pack(),
        );
        let mut slab = BSlab::new(off, class, veh, geom);
        let mut filled = 0;
        while filled < cap {
            match slab.take() {
                Some(i) => {
                    self.tcache[class].push(slab.block_addr(i));
                    filled += 1;
                }
                None => break,
            }
        }
        if slab.nfree > 0 {
            heap.freelist[class].push_back(off);
        }
        heap.slabs.insert(off, slab);
        Ok(())
    }

    fn arena_id(&self) -> u32 {
        self.inner
            .arenas
            .iter()
            .position(|a| Arc::ptr_eq(a, &self.arena))
            .expect("arena registered") as u32
    }

    fn malloc_small(&mut self, class: ClassId, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        let addr = match self.tcache[class].pop() {
            Some(a) => a,
            None => {
                self.refill(class)?;
                self.tcache[class].pop().ok_or(PmError::OutOfMemory { requested: size })?
            }
        };
        let entry = self.wal_begin(addr, dest, size as u32, true);
        // Block metadata (needs the owning heap's slab).
        self.with_owner_heap(addr, |this, heap, slab_off| {
            let slab = heap.slabs.get_mut(&slab_off).expect("checked");
            let idx = slab.block_index(addr).expect("own block");
            this.persist_block_meta(slab, idx, true);
        })?;
        let pool = Arc::clone(&self.inner.pool);
        if self.policy().strong {
            // Destination slots are application-owned locations (Data).
            pool.persist_u64(&mut self.pm, dest, addr, FlushKind::Data);
        } else {
            pool.write_u64(dest, addr);
            pool.charge_store(&mut self.pm, dest, 8);
        }
        self.wal_finish(entry);
        self.inner.live_bytes.fetch_add(class_size(class), Ordering::Relaxed);
        Ok(addr)
    }

    /// Run `f` with the heap owning `addr` locked (the slab lives at
    /// `addr & !(SLAB_SIZE-1)` inside it).
    fn with_owner_heap<R>(
        &mut self,
        addr: PmOffset,
        f: impl FnOnce(&mut Self, &mut BHeap, PmOffset) -> R,
    ) -> PmResult<R> {
        let slab_off = addr & !(SLAB_SIZE as u64 - 1);
        let owner = self.inner.rtree.lookup(addr).ok_or(PmError::NotAllocated)?;
        let Owner::Slab { arena: idx, .. } = Owner::unpack(owner) else {
            return Err(PmError::NotAllocated);
        };
        let heap_arc = if self.policy().per_thread_heaps {
            self.heap_for(idx)
        } else {
            Arc::clone(&self.inner.arenas[idx as usize].heap)
        };
        let inner = Arc::clone(&self.inner);
        let mut heap = timed_lock(&inner.locks, &heap_arc);
        if !heap.slabs.contains_key(&slab_off) {
            return Err(PmError::Corrupt("slab missing"));
        }
        Ok(f(self, &mut heap, slab_off))
    }

    fn free_small(&mut self, addr: PmOffset, dest: PmOffset) -> PmResult<()> {
        let entry = self.wal_begin(addr, dest, 0, false);
        let pool = Arc::clone(&self.inner.pool);
        let strong = self.policy().strong;
        let embedded = matches!(self.policy().meta, MetaScheme::EmbeddedList { .. });
        let cache_room = !embedded;
        let tcache_cap = self.policy().tcache_cap;
        let mut class = 0;
        let mut to_tcache = false;
        self.with_owner_heap(addr, |this, heap, slab_off| -> PmResult<()> {
            let slab = heap.slabs.get_mut(&slab_off).expect("checked");
            let idx = slab.block_index(addr).ok_or(PmError::NotAllocated)?;
            if !slab.is_taken(idx) {
                return Err(PmError::NotAllocated);
            }
            class = slab.class;
            this.persist_block_meta(slab, idx, false);
            let slab = heap.slabs.get_mut(&slab_off).expect("checked");
            if cache_room && this.tcache[class].len() < tcache_cap {
                // Block stays reserved (`taken`) while parked in the
                // freeing thread's tcache.
                to_tcache = true;
                return Ok(());
            }
            if let MetaScheme::EmbeddedList { persist_every_free, batch } = this.policy().meta {
                let pool2 = Arc::clone(&this.inner.pool);
                if persist_every_free {
                    // Makalu: chain the block immediately (block link +
                    // header head, flushed), then it becomes available.
                    this.push_chain(&pool2, slab, &[idx as u32]);
                    let was_exhausted = slab.nfree == 0;
                    slab.unmark(idx);
                    slab.free_stack.push(idx as u32);
                    if was_exhausted {
                        heap.freelist[class].push_back(slab_off);
                    }
                } else {
                    // Ralloc: defer; the block stays reserved (`taken`)
                    // until the batch is chained — reusing it earlier
                    // would let the chain write clobber live data.
                    slab.pending.push(idx as u32);
                    if slab.pending.len() >= batch {
                        let pending = std::mem::take(&mut slab.pending);
                        this.push_chain(&pool2, slab, &pending);
                        let was_exhausted = slab.nfree == 0;
                        for &i in &pending {
                            slab.unmark(i as usize);
                            slab.free_stack.push(i);
                        }
                        if was_exhausted && slab.nfree > 0 {
                            heap.freelist[class].push_back(slab_off);
                        }
                    }
                }
                return Ok(());
            }
            // Bitmap/state schemes: return the block to the slab.
            let was_exhausted = slab.nfree == 0;
            slab.unmark(idx);
            if was_exhausted {
                heap.freelist[class].push_back(slab_off);
            }
            Ok(())
        })??;
        if to_tcache {
            self.tcache[class].push(addr);
        }
        if strong {
            pool.persist_u64(&mut self.pm, dest, 0, FlushKind::Data);
        } else {
            pool.write_u64(dest, 0);
            pool.charge_store(&mut self.pm, dest, 8);
        }
        self.wal_finish(entry);
        self.inner.live_bytes.fetch_sub(class_size(class), Ordering::Relaxed);
        Ok(())
    }

    fn malloc_large(&mut self, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        let (veh, off) =
            timed_lock(&inner.locks, &inner.large).alloc(pool, &mut self.pm, size, false)?;
        let actual =
            timed_lock(&inner.locks, &inner.large).veh(veh).map(|v| v.size).unwrap_or(size);
        let entry = self.wal_begin(off, dest, size as u32, true);
        if self.policy().strong {
            pool.persist_u64(&mut self.pm, dest, off, FlushKind::Data);
        } else {
            pool.write_u64(dest, off);
            pool.charge_store(&mut self.pm, dest, 8);
        }
        self.wal_finish(entry);
        inner.live_bytes.fetch_add(actual, Ordering::Relaxed);
        Ok(off)
    }

    fn free_large(&mut self, veh: VehId, addr: PmOffset, dest: PmOffset) -> PmResult<()> {
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        {
            let large = timed_lock(&inner.locks, &inner.large);
            let v = large.veh(veh).ok_or(PmError::NotAllocated)?;
            if v.off != addr {
                return Err(PmError::NotAllocated);
            }
        }
        let entry = self.wal_begin(addr, dest, 0, false);
        if self.policy().strong {
            pool.persist_u64(&mut self.pm, dest, 0, FlushKind::Data);
        } else {
            pool.write_u64(dest, 0);
            pool.charge_store(&mut self.pm, dest, 8);
        }
        let mut large = timed_lock(&inner.locks, &inner.large);
        let size = large.veh(veh).map(|v| v.size).unwrap_or(0);
        large.free(pool, &mut self.pm, veh)?;
        drop(large);
        self.wal_finish(entry);
        inner.live_bytes.fetch_sub(size, Ordering::Relaxed);
        Ok(())
    }
}

impl AllocThread for BaselineThread {
    fn malloc_to(&mut self, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        if !dest.is_multiple_of(8)
            || (dest as usize).checked_add(8).is_none_or(|e| e > self.inner.pool.size())
        {
            return Err(PmError::InvalidRequest("dest must be an 8-byte-aligned pool slot"));
        }
        if size == 0 {
            return Err(PmError::InvalidRequest("zero-size allocation"));
        }
        match size_to_class(size) {
            Some(class) => self.malloc_small(class, size, dest),
            None => self.malloc_large(size, dest),
        }
    }

    fn free_from(&mut self, dest: PmOffset) -> PmResult<()> {
        if !dest.is_multiple_of(8)
            || (dest as usize).checked_add(8).is_none_or(|e| e > self.inner.pool.size())
        {
            return Err(PmError::InvalidRequest("dest must be an 8-byte-aligned pool slot"));
        }
        let addr = self.inner.pool.read_u64(dest);
        if addr == 0 {
            return Err(PmError::NotAllocated);
        }
        match self.inner.rtree.lookup(addr).map(Owner::unpack) {
            Some(Owner::Slab { .. }) => self.free_small(addr, dest),
            Some(Owner::Extent { veh }) => self.free_large(veh, addr, dest),
            None => Err(PmError::NotAllocated),
        }
    }

    fn flush_cache(&mut self) {
        for class in 0..NUM_CLASSES {
            let cached = std::mem::take(&mut self.tcache[class]);
            for addr in cached {
                let _ = self.with_owner_heap(addr, |_, heap, slab_off| {
                    let slab = heap.slabs.get_mut(&slab_off).expect("checked");
                    if let Some(idx) = slab.block_index(addr) {
                        if slab.is_taken(idx) {
                            let was_exhausted = slab.nfree == 0;
                            slab.unmark(idx);
                            if was_exhausted {
                                heap.freelist[slab.class].push_back(slab_off);
                            }
                        }
                    }
                });
            }
        }
        // Flush pending embedded-list batches.
        if let MetaScheme::EmbeddedList { persist_every_free: false, .. } = self.policy().meta {
            let inner = Arc::clone(&self.inner);
            let pool = Arc::clone(&inner.pool);
            let heaps: Vec<Arc<Mutex<BHeap>>> = if self.policy().per_thread_heaps {
                inner.thread_heaps.lock().clone()
            } else {
                inner.arenas.iter().map(|a| Arc::clone(&a.heap)).collect()
            };
            for h in heaps {
                let mut heap = timed_lock(&inner.locks, &h);
                let offs: Vec<u64> = heap.slabs.keys().copied().collect();
                for off in offs {
                    let slab = heap.slabs.get_mut(&off).expect("listed");
                    if slab.pending.is_empty() {
                        continue;
                    }
                    let pending = std::mem::take(&mut slab.pending);
                    self.push_chain(&pool, slab, &pending);
                    let class = slab.class;
                    let was_exhausted = slab.nfree == 0;
                    for &i in &pending {
                        slab.unmark(i as usize);
                        slab.free_stack.push(i);
                    }
                    if was_exhausted && slab.nfree > 0 {
                        heap.freelist[class].push_back(off);
                    }
                }
            }
        }
    }

    fn pm(&self) -> &PmThread {
        &self.pm
    }

    fn pm_mut(&mut self) -> &mut PmThread {
        &mut self.pm
    }
}

impl Drop for BaselineThread {
    fn drop(&mut self) {
        self.flush_cache();
        if !self.policy().per_thread_heaps {
            self.arena.threads.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::LatencyMode;

    #[test]
    fn layout_regions_disjoint() {
        let l = BLayout::compute(256 << 20, 4, 1 << 16).unwrap();
        assert!(l.roots + (l.roots_count * 8) as u64 <= l.wal_base);
        let wal_end = l.wal_base + (4 * l.wal_bytes_per_arena) as u64;
        assert!(wal_end <= l.region_table);
        assert!(l.region_table + l.region_table_bytes as u64 <= l.heap_base);
        assert_eq!(l.heap_base % SLAB_SIZE as u64, 0);
        assert!(BLayout::compute(1 << 20, 4, 1 << 16).is_err(), "tiny pools rejected");
    }

    #[test]
    fn geometry_per_scheme() {
        let geoms = GeometryTable::new(1);
        let c = nvalloc::size_to_class(64).unwrap();
        let bm = geom_for(SCHEME_BITMAP, c, &geoms);
        assert!(bm.bitmap.is_some());
        let st = geom_for(SCHEME_STATE, c, &geoms);
        assert!(st.bitmap.is_none());
        assert!(st.data_offset >= 64 + 2 * st.nblocks, "state array fits in header");
        let ls = geom_for(SCHEME_LIST, c, &geoms);
        assert_eq!(ls.data_offset, 64);
        assert!(ls.nblocks > st.nblocks, "embedded scheme has the least overhead");
        for g in [bm, st, ls] {
            assert!(g.data_offset + g.nblocks * 64 <= SLAB_SIZE);
        }
    }

    #[test]
    fn bslab_take_unmark_cycle() {
        let geoms = GeometryTable::new(1);
        let c = nvalloc::size_to_class(64).unwrap();
        let geom = geom_for(SCHEME_LIST, c, &geoms);
        let mut s = BSlab::new_shell(0, c, 0, geom);
        let a = s.take().unwrap();
        let b = s.take().unwrap();
        assert_ne!(a, b);
        assert!(s.is_taken(a));
        s.unmark(a);
        s.free_stack.push(a as u32);
        // The freed block is reused before the bump frontier advances.
        assert_eq!(s.take(), Some(a));
    }

    #[test]
    fn pool_magic_distinguishes_kinds() {
        let ids: std::collections::HashSet<u64> =
            crate::policy::BaselineKind::ALL.iter().map(|k| pool_magic(*k)).collect();
        assert_eq!(ids.len(), crate::policy::BaselineKind::ALL.len());
    }

    #[test]
    fn per_thread_heap_registry_grows() {
        let pool = PmemPool::new(
            nvalloc_pmem::PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off),
        );
        let b = Baseline::create(pool, crate::policy::BaselineKind::Pallocator).unwrap();
        use nvalloc::api::PmAllocator;
        let _t1 = b.thread();
        let _t2 = b.thread();
        assert_eq!(b.0.thread_heaps.lock().len(), 2);
    }
}
