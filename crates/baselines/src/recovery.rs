//! Baseline recovery paths, modelling each system's documented strategy
//! (the Fig. 18 comparison):
//!
//! * **nvm_malloc** — scan the WAL and region table only; slab free-space
//!   reconstruction is deferred to runtime deallocation. Microseconds.
//! * **PMDK / PAllocator** — replay the redo WAL and rescan every slab's
//!   bitmap / state array. Milliseconds.
//! * **Makalu** — conservative GC: transitively scan every reachable
//!   block's full contents from the persistent roots. Slowest.
//! * **Ralloc** — GC, but with typed filter functions: only the first two
//!   words of each block are scanned for pointers, cutting the read volume
//!   ("Ralloc only needs to scan part of nodes in the recovery", §6.6).

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Arc;

use parking_lot::Mutex;

use nvalloc::internals::{GeometryTable, LargeAlloc, LargeConfig, Owner, PmBitmap, RTree};
use nvalloc::{class_size, PmError, PmOffset, PmResult, SLAB_SIZE};
use nvalloc_pmem::PmemPool;

use crate::engine::{
    geom_for, pool_magic, BArena, BHeap, BInner, BLayout, BLockStats, BSlab, BWalRecovered,
    Baseline, SCHEME_BITMAP, SCHEME_LIST, SCHEME_STATE, SLAB_MAGIC,
};
use crate::policy::BaselineKind;

/// What a baseline recovery did (sizes for reporting; Fig. 18 measures the
/// wall/virtual time of the whole call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineRecovery {
    /// Slabs re-registered.
    pub slabs: usize,
    /// Non-slab extents re-registered.
    pub extents: usize,
    /// WAL entries scanned.
    pub wal_scanned: usize,
    /// Blocks marked live by GC (GC-based baselines).
    pub gc_marked: usize,
}

impl Baseline {
    /// Recover a baseline allocator from an existing pool image.
    ///
    /// # Errors
    /// [`PmError::Corrupt`] if the pool was not formatted for `kind`.
    pub fn recover(
        pool: Arc<PmemPool>,
        kind: BaselineKind,
    ) -> PmResult<(Baseline, BaselineRecovery)> {
        if pool.read_u64(0) != pool_magic(kind) {
            return Err(PmError::Corrupt("pool not formatted for this baseline"));
        }
        let policy = kind.policy();
        let roots = pool.read_u64(8) as usize;
        let layout = BLayout::compute(pool.size(), policy.arenas, roots)?;
        let mut report = BaselineRecovery::default();

        let rtree = Arc::new(RTree::new());
        let (large, extents) = LargeAlloc::recover(
            &pool,
            LargeConfig {
                heap_base: layout.heap_base,
                heap_bytes: layout.heap_bytes,
                log_bookkeeping: false,
                booklog_base: 0,
                booklog_bytes: 0,
                booklog_stripes: 1,
                booklog_gc: false,
                slow_gc_threshold: usize::MAX,
                decay_ms: 10_000,
                region_table_base: layout.region_table,
                region_table_bytes: layout.region_table_bytes,
                shard_tag: 0, // baselines run a single unsharded large allocator
            },
            Arc::clone(&rtree),
        );
        let geoms = GeometryTable::new(1);

        // Rebuild slabs per the baseline's strategy.
        let mut slabs: Vec<BSlab> = Vec::new();
        for e in &extents {
            if !e.is_slab {
                report.extents += 1;
                continue;
            }
            let w0 = pool.read_u64(e.off);
            if w0 as u32 != SLAB_MAGIC {
                continue; // header never persisted; space stays reachable as an extent
            }
            let class = (w0 >> 32) as u16 as usize;
            let scheme = (w0 >> 48) as u8;
            if class >= nvalloc::NUM_CLASSES
                || !matches!(scheme, SCHEME_BITMAP | SCHEME_STATE | SCHEME_LIST)
            {
                continue;
            }
            let geom = geom_for(scheme, class, &geoms);
            let mut slab = BSlab::new_shell(e.off, class, e.veh, geom);
            match kind {
                BaselineKind::NvmMalloc => {
                    // Deferred reconstruction: consider everything taken;
                    // runtime frees repopulate the free space.
                    slab.mark_all();
                }
                BaselineKind::Pmdk | BaselineKind::Pallocator => {
                    // Rescan the persistent per-block metadata.
                    if scheme == SCHEME_BITMAP {
                        let bm = PmBitmap::new(e.off + 64, geom.bitmap.expect("bitmap"));
                        for i in 0..geom.nblocks {
                            if bm.get(&pool, i) {
                                slab.mark_index(i);
                            }
                        }
                    } else {
                        for i in 0..geom.nblocks {
                            if pool.read_u16(e.off + 64 + (i * 2) as u64) != 0 {
                                slab.mark_index(i);
                            }
                        }
                    }
                    slab.seal_bump();
                }
                BaselineKind::Makalu | BaselineKind::Ralloc => {
                    // Placeholder; the GC pass below sets the marks.
                    slab.mark_all();
                }
            }
            slabs.push(slab);
        }
        report.slabs = slabs.len();

        // GC-based baselines: conservative mark phase.
        if matches!(kind, BaselineKind::Makalu | BaselineKind::Ralloc) {
            let scan_limit = if kind == BaselineKind::Ralloc { Some(16) } else { None };
            let marked = conservative_mark(&pool, &layout, &slabs, &large, scan_limit);
            report.gc_marked = marked.len();
            for slab in &mut slabs {
                slab.clear_all();
                for i in 0..slab.geom.nblocks {
                    if marked.contains(&slab.block_addr(i)) {
                        slab.mark_index(i);
                    }
                }
                slab.seal_bump();
                slab.rebuild_free_stack();
            }
        }

        // WAL scan (strong baselines): undo unfinished operations.
        if policy.strong {
            for a in 0..policy.arenas {
                // Skip the 64 B lane header at the region start.
                let base = layout.wal_base + (a * layout.wal_bytes_per_arena) as u64 + 64;
                let entries = layout.wal_bytes_per_arena / crate::engine::WAL_ENTRY_BYTES - 2;
                for s in 0..entries {
                    let off = base + (s * crate::engine::WAL_ENTRY_BYTES) as u64;
                    let w2 = pool.read_u64(off + 16);
                    let op = w2 & 0xff;
                    if op == 0 {
                        continue;
                    }
                    report.wal_scanned += 1;
                    let finished = pool.read_u64(off + 24) != 0;
                    if finished {
                        continue;
                    }
                    let addr = pool.read_u64(off);
                    let dest = pool.read_u64(off + 8);
                    let committed = dest != 0
                        && dest as usize + 8 <= pool.size()
                        && pool.read_u64(dest) == addr;
                    let rec = BWalRecovered { op: op as u8, addr, dest, committed };
                    apply_wal_fix(&pool, &mut slabs, rec);
                }
            }
        }

        // Assemble the allocator.
        let arenas: Vec<Arc<BArena>> = (0..policy.arenas)
            .map(|i| {
                let wal_base = layout.wal_base + (i * layout.wal_bytes_per_arena) as u64;
                Arc::new(BArena::reopen(wal_base))
            })
            .collect();
        let thread_heaps = Mutex::new(Vec::new());
        // Per-thread-heap baselines park recovered slabs in heap 0.
        if policy.per_thread_heaps {
            thread_heaps.lock().push(Arc::new(Mutex::new(BHeap::new())));
        }

        let mut live_bytes = 0usize;
        {
            // Distribute slabs and register ownership.
            let heaps: Vec<Arc<Mutex<BHeap>>> = if policy.per_thread_heaps {
                thread_heaps.lock().clone()
            } else {
                arenas.iter().map(|a| Arc::clone(&a.heap)).collect()
            };
            for (i, slab) in slabs.into_iter().enumerate() {
                let hidx = i % heaps.len();
                rtree.insert_range(
                    slab.off,
                    SLAB_SIZE,
                    Owner::Slab { slab: slab.off, arena: hidx as u32 }.pack(),
                );
                live_bytes += (slab.geom.nblocks - slab.nfree) * class_size(slab.class);
                let mut h = heaps[hidx].lock();
                if slab.nfree > 0 {
                    h.freelist[slab.class].push_back(slab.off);
                }
                h.slabs.insert(slab.off, slab);
            }
        }
        for e in &extents {
            if !e.is_slab && large.veh(e.veh).is_some() {
                live_bytes += e.size;
            }
        }

        let b = Baseline(Arc::new(BInner {
            pool,
            kind,
            policy,
            layout,
            geoms,
            rtree,
            large: Mutex::new(large),
            arenas,
            thread_heaps,
            live_bytes: AtomicUsize::new(live_bytes),
            locks: BLockStats::default(),
            seq: AtomicU64::new(1),
        }));
        Ok((b, report))
    }
}

fn apply_wal_fix(pool: &PmemPool, slabs: &mut [BSlab], rec: BWalRecovered) {
    let slab_off = rec.addr & !(SLAB_SIZE as u64 - 1);
    let Some(slab) = slabs.iter_mut().find(|s| s.off == slab_off) else { return };
    let Some(idx) = slab.block_index(rec.addr) else { return };
    let should_live = rec.op == 1 && rec.committed;
    if should_live && !slab.is_taken(idx) {
        slab.mark_index(idx);
    } else if !should_live && slab.is_taken(idx) {
        slab.unmark(idx);
    }
    if rec.op == 2 && rec.committed {
        // Unfinished free: complete the destination clear.
        let mut t = pool.register_thread();
        pool.persist_u64(&mut t, rec.dest, 0, nvalloc_pmem::FlushKind::Meta);
    }
}

/// Conservative mark from the root slots. `scan_limit` bounds how many
/// bytes of each block are scanned for pointers (Ralloc's filter model).
fn conservative_mark(
    pool: &PmemPool,
    layout: &BLayout,
    slabs: &[BSlab],
    large: &LargeAlloc,
    scan_limit: Option<usize>,
) -> HashSet<PmOffset> {
    let by_off: std::collections::HashMap<PmOffset, &BSlab> =
        slabs.iter().map(|s| (s.off, s)).collect();
    let mut marked = HashSet::new();
    let mut queue: VecDeque<(PmOffset, usize)> = VecDeque::new();

    let push =
        |p: PmOffset, marked: &mut HashSet<PmOffset>, queue: &mut VecDeque<(PmOffset, usize)>| {
            if p == 0 || p as usize >= pool.size() {
                return;
            }
            let slab_off = p & !(SLAB_SIZE as u64 - 1);
            if let Some(slab) = by_off.get(&slab_off) {
                if slab.block_index(p).is_some() && marked.insert(p) {
                    queue.push_back((p, class_size(slab.class)));
                }
                return;
            }
            if let Some(Owner::Extent { veh }) = large.rtree().lookup(p).map(Owner::unpack) {
                if let Some(v) = large.veh(veh) {
                    if v.off == p && marked.insert(p) {
                        queue.push_back((p, v.size));
                    }
                }
            }
        };

    for i in 0..layout.roots_count {
        let p = pool.read_u64(layout.roots + (i * 8) as u64);
        push(p, &mut marked, &mut queue);
    }
    while let Some((start, len)) = queue.pop_front() {
        let len = scan_limit.map_or(len, |l| l.min(len));
        let mut off = start;
        while off + 8 <= start + len as u64 {
            let p = pool.read_u64(off);
            push(p, &mut marked, &mut queue);
            off += 8;
        }
    }
    marked
}
