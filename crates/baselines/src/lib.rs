//! Baseline persistent-memory allocators for comparison with NVAlloc.
//!
//! Five allocators modelled after the systems the paper evaluates against,
//! all running on the same [`nvalloc_pmem`] substrate and the same extent
//! manager (in-place region headers — the §3.3 behaviour), so that the
//! differences the benchmarks measure are exactly the *metadata policies*
//! the paper attributes its wins to:
//!
//! | Baseline | Small-block metadata | Consistency | Threading |
//! |---|---|---|---|
//! | [`BaselineKind::Pmdk`] | sequential bitmaps | per-op redo-WAL **with commit mark** (reflushes its own line) | arenas |
//! | [`BaselineKind::NvmMalloc`] | sequential bitmaps | per-op WAL **with invalidation** | arenas |
//! | [`BaselineKind::Pallocator`] | 2 B per-block state array | per-thread micro-logs with invalidation | per-thread heaps |
//! | [`BaselineKind::Makalu`] | embedded free lists, persisted on every free | post-crash conservative GC | arenas |
//! | [`BaselineKind::Ralloc`] | embedded free lists, batched persistence | post-crash GC (partial scan) | arenas + thread caches |
//!
//! All five use **static slab segregation** (no morphing) — the
//! fragmentation behaviour of Fig. 1b — and none interleaves its metadata.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use nvalloc::api::{AllocThread, PmAllocator};
//! use nvalloc_baselines::{Baseline, BaselineKind};
//! use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pool = PmemPool::new(PmemConfig::default()
//!     .pool_size(32 << 20)
//!     .latency_mode(LatencyMode::Off));
//! let alloc = Baseline::create(Arc::clone(&pool), BaselineKind::Pmdk)?;
//! let mut t = alloc.thread();
//! let root = alloc.root_offset(0);
//! let addr = t.malloc_to(100, root)?;
//! assert_eq!(pool.read_u64(root), addr);
//! t.free_from(root)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod policy;
mod recovery;

pub use engine::{Baseline, BaselineThread};
pub use policy::{BaselineKind, MetaScheme, Policy, WalScheme};
pub use recovery::BaselineRecovery;
