//! Per-baseline policy definitions.

/// How a baseline records per-block allocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaScheme {
    /// One bit per block in a sequential (non-interleaved) bitmap in the
    /// slab header; persisted per op by strongly consistent baselines.
    SeqBitmap,
    /// A 2-byte state word per block in the slab header (PAllocator's page
    /// headers).
    StateArray,
    /// Embedded free lists: each free block's first word points to the
    /// next; the chain head lives in the slab header.
    ///
    /// `persist_every_free = true` (Makalu) flushes the block link *and*
    /// the header head on every free; `false` (Ralloc) batches `batch`
    /// frees per header flush.
    EmbeddedList {
        /// Flush the chain on every free (Makalu) or in batches (Ralloc).
        persist_every_free: bool,
        /// Batch size for deferred persistence.
        batch: usize,
    },
}

/// Write-ahead-log behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalScheme {
    /// No WAL (GC-based baselines).
    None,
    /// Per-op redo entry plus a **commit mark** written to the same entry
    /// after the operation — the second flush reflushes the entry's cache
    /// line (PMDK).
    PerOpCommit,
    /// Per-op entry plus an **invalidation** write after the operation
    /// (nvm_malloc); same reflush pattern, different recovery cost.
    PerOpInvalidate,
    /// Per-thread micro-logs with invalidation (PAllocator).
    ThreadMicroInvalidate,
}

/// A baseline's complete policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Display name.
    pub name: &'static str,
    /// Block metadata scheme.
    pub meta: MetaScheme,
    /// WAL scheme.
    pub wal: WalScheme,
    /// Per-class thread-cache capacity (0 disables the cache).
    pub tcache_cap: usize,
    /// Give every thread a private heap (PAllocator) instead of sharing
    /// arenas.
    pub per_thread_heaps: bool,
    /// Number of shared arenas (ignored with per-thread heaps).
    pub arenas: usize,
    /// Strongly consistent: flush block metadata and destination slots on
    /// every operation.
    pub strong: bool,
    /// Extra transaction-log records written (and flushed) per operation,
    /// beyond the redo entry: PMDK's transactional allocator also snapshots
    /// the destination into an undo log.
    pub extra_tx_entries: usize,
}

/// The five baselines of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// PMDK 1.11-like (libpmemobj allocator).
    Pmdk,
    /// nvm_malloc-like (Schwalb et al., ADMS'15).
    NvmMalloc,
    /// PAllocator-like (Oukid et al., VLDB'17).
    Pallocator,
    /// Makalu-like (Bhandari et al., OOPSLA'16).
    Makalu,
    /// Ralloc-like (Cai et al., ISMM'20).
    Ralloc,
}

impl BaselineKind {
    /// All baselines, in the paper's usual presentation order.
    pub const ALL: [BaselineKind; 5] = [
        BaselineKind::Pmdk,
        BaselineKind::NvmMalloc,
        BaselineKind::Pallocator,
        BaselineKind::Makalu,
        BaselineKind::Ralloc,
    ];

    /// The strongly consistent subset (Figs. 9/20).
    pub const STRONG: [BaselineKind; 3] =
        [BaselineKind::Pmdk, BaselineKind::NvmMalloc, BaselineKind::Pallocator];

    /// The weakly consistent subset (Fig. 10).
    pub const WEAK: [BaselineKind; 2] = [BaselineKind::Makalu, BaselineKind::Ralloc];

    /// The policy this baseline runs with.
    pub fn policy(self) -> Policy {
        match self {
            BaselineKind::Pmdk => Policy {
                name: "PMDK",
                meta: MetaScheme::SeqBitmap,
                wal: WalScheme::PerOpCommit,
                tcache_cap: 32,
                per_thread_heaps: false,
                arenas: 4,
                strong: true,
                extra_tx_entries: 1,
            },
            BaselineKind::NvmMalloc => Policy {
                name: "nvm_malloc",
                meta: MetaScheme::SeqBitmap,
                wal: WalScheme::PerOpInvalidate,
                tcache_cap: 32,
                per_thread_heaps: false,
                arenas: 4,
                strong: true,
                extra_tx_entries: 0,
            },
            BaselineKind::Pallocator => Policy {
                name: "PAllocator",
                meta: MetaScheme::StateArray,
                wal: WalScheme::ThreadMicroInvalidate,
                tcache_cap: 32,
                per_thread_heaps: true,
                arenas: 1,
                strong: true,
                extra_tx_entries: 0,
            },
            BaselineKind::Makalu => Policy {
                name: "Makalu",
                meta: MetaScheme::EmbeddedList { persist_every_free: true, batch: 1 },
                wal: WalScheme::None,
                tcache_cap: 32,
                per_thread_heaps: false,
                arenas: 4,
                strong: false,
                extra_tx_entries: 0,
            },
            BaselineKind::Ralloc => Policy {
                name: "Ralloc",
                meta: MetaScheme::EmbeddedList { persist_every_free: false, batch: 32 },
                wal: WalScheme::None,
                tcache_cap: 64,
                per_thread_heaps: false,
                arenas: 4,
                strong: false,
                extra_tx_entries: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_their_papers() {
        assert!(BaselineKind::Pmdk.policy().strong);
        assert!(BaselineKind::NvmMalloc.policy().strong);
        assert!(BaselineKind::Pallocator.policy().per_thread_heaps);
        assert!(!BaselineKind::Makalu.policy().strong);
        assert_eq!(BaselineKind::Makalu.policy().wal, WalScheme::None);
        assert!(matches!(
            BaselineKind::Ralloc.policy().meta,
            MetaScheme::EmbeddedList { persist_every_free: false, .. }
        ));
        // Strong + weak partitions cover everything except each other.
        assert_eq!(BaselineKind::STRONG.len() + BaselineKind::WEAK.len(), BaselineKind::ALL.len());
    }
}
