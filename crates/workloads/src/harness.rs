//! The multi-threaded benchmark harness and result reporting.

use std::sync::Arc;

use nvalloc::api::{AllocThread, PmAllocator};
use nvalloc::telemetry::{json, MetricsSnapshot};
use nvalloc_pmem::{FlushKind, StatsSnapshot};

/// Modelled CPU nanoseconds per allocator operation (search, list
/// manipulation, locking — everything that is not a PM access). Optimised
/// C allocators spend 20–100 ns per op on DRAM-side work; 150 ns is a
/// conservative stand-in that replaces the (much larger, and noisy)
/// wall-clock overhead of this *simulator*, keeping results deterministic
/// and host-independent.
pub const CPU_NS_PER_OP: u64 = 150;

/// Root-slot stride used by the workloads: destination slots are spread
/// one cache line apart (8 × 8 B slots), modelling applications that embed
/// their persistent pointer inside a record rather than packing pointers
/// into a dense array — dense packing would make every benchmark measure
/// the *application's* reflushes instead of the allocator's.
pub const ROOT_SPREAD: usize = 8;

/// The pool offset of logical root `idx` under [`ROOT_SPREAD`].
///
/// # Panics
/// Panics if the spread index exceeds the allocator's root capacity.
pub fn spread_root(alloc: &dyn PmAllocator, idx: usize) -> u64 {
    alloc.root_offset(idx * ROOT_SPREAD)
}

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchMeasurement {
    /// Allocator display name.
    pub allocator: String,
    /// Worker thread count.
    pub threads: usize,
    /// Total operations completed (as counted by the workload).
    pub ops: u64,
    /// Max over threads of (wall ns + accrued virtual PM ns).
    pub elapsed_ns: u64,
    /// Host wall-clock nanoseconds for the whole measured region. Unlike
    /// `elapsed_ns` this is *not* host-independent — it is what the
    /// scalability experiments use to observe real lock contention, which
    /// the per-thread virtual model cannot see.
    pub wall_ns: u64,
    /// PM event counters for the measured phase.
    pub stats: StatsSnapshot,
    /// Peak mapped heap bytes at the end of the run.
    pub peak_mapped: usize,
    /// Mapped heap bytes at the end of the run.
    pub mapped: usize,
    /// Allocator-internal telemetry for the measured phase (all-zero for
    /// allocators that do not implement [`PmAllocator::metrics`]).
    pub metrics: MetricsSnapshot,
}

impl BenchMeasurement {
    /// Million operations per modelled second.
    pub fn mops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / self.elapsed_ns as f64 * 1e3
    }

    /// Modelled elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns as f64 / 1e6
    }

    /// Million operations per wall-clock second (0 when no wall time was
    /// recorded).
    pub fn wall_mops(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / self.wall_ns as f64 * 1e3
    }

    /// Wall-clock nanoseconds spent waiting on instrumented allocator
    /// mutexes (arena, heap, WAL-lane, and large-allocator locks), per
    /// completed operation. The scalability gate in CI holds this down
    /// for the sharded NVAlloc series.
    pub fn lock_wait_ns_per_op(&self) -> f64 {
        self.metrics.lock_wait_ns as f64 / self.ops.max(1) as f64
    }

    /// Serialise the measurement as one self-contained JSON object
    /// (single line, no trailing newline) for `--json` bench output.
    ///
    /// `bench` names the experiment (e.g. `"fig09_small_strong"`). Field
    /// order is fixed, so identical runs produce byte-identical records.
    pub fn to_json(&self, bench: &str) -> String {
        let mut o = json::JsonObj::new();
        o.field_str("bench", bench);
        o.field_str("allocator", &self.allocator);
        o.field_u64("threads", self.threads as u64);
        o.field_u64("ops", self.ops);
        o.field_u64("elapsed_ns", self.elapsed_ns);
        o.field_f64("mops", self.mops());
        o.field_u64("wall_ns", self.wall_ns);
        o.field_f64("wall_mops", self.wall_mops());
        o.field_f64("lock_wait_ns_per_op", self.lock_wait_ns_per_op());
        let mut st = json::JsonObj::new();
        st.field_u64("flushes", self.stats.flushes);
        st.field_u64("reflushes", self.stats.reflushes);
        st.field_u64("fences", self.stats.fences);
        st.field_u64("seq_writes", self.stats.seq_writes);
        st.field_u64("rand_writes", self.stats.rand_writes);
        st.field_u64("bytes_flushed", self.stats.bytes_flushed);
        st.field_u64("xpbuf_misses", self.stats.xpbuf_misses);
        for k in FlushKind::ALL {
            let mut kk = json::JsonObj::new();
            kk.field_u64("flushes", self.stats.flushes_of(k));
            kk.field_u64("reflushes", self.stats.reflushes_of(k));
            kk.field_u64("ns", self.stats.ns_of(k));
            st.field_raw(k.label(), &kk.finish());
        }
        o.field_raw("stats", &st.finish());
        o.field_u64("peak_mapped", self.peak_mapped as u64);
        o.field_u64("mapped", self.mapped as u64);
        o.field_raw("metrics", &self.metrics.to_json());
        o.finish()
    }
}

/// Run `work(thread_index, alloc_thread)` on `threads` workers and measure.
///
/// Returns the measurement with `ops` = sum of the per-thread return
/// values. PM counters are reset at the start of the measured region.
/// **Time model.** The benchmark host may have fewer cores than the
/// paper's 40-core testbed (possibly just one), so wall-clock time mostly
/// measures this simulator's own overhead and time-slicing. Modelled
/// elapsed time is therefore the max over threads of
/// `virtual PM ns + ops × CPU_NS_PER_OP`: the PM component — which
/// dominates every experiment in the paper — is exact per the latency
/// model, and the CPU component is a calibrated constant per operation,
/// making every measurement deterministic and host-independent.
pub fn run_threads(
    alloc: &Arc<dyn PmAllocator>,
    threads: usize,
    work: impl Fn(usize, &mut dyn AllocThread) -> u64 + Sync,
) -> BenchMeasurement {
    alloc.pool().stats().reset();
    let m0 = alloc.metrics();
    let wall_start = std::time::Instant::now();
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                let alloc = Arc::clone(alloc);
                let work = &work;
                s.spawn(move || {
                    let mut t = alloc.thread();
                    t.pm_mut().reset_clock();
                    let ops = work(k, t.as_mut());
                    (ops, t.pm().virtual_ns())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let ops = per_thread.iter().map(|(o, _)| o).sum();
    let elapsed_ns = per_thread.iter().map(|(o, v)| v + o * CPU_NS_PER_OP).max().unwrap_or(0);
    BenchMeasurement {
        allocator: alloc.name(),
        threads,
        ops,
        elapsed_ns,
        wall_ns,
        stats: alloc.pool().stats().snapshot(),
        peak_mapped: alloc.peak_mapped_bytes(),
        mapped: alloc.heap_mapped_bytes(),
        // Worker `AllocThread`s dropped inside the scope above, so their
        // thread-local histograms are already merged into the registry.
        metrics: alloc.metrics().since(&m0),
    }
}

/// Minimal fixed-width table printer for bench binaries.
///
/// ```
/// use nvalloc_workloads::Reporter;
/// let mut rep = Reporter::new(&["allocator", "Mops/s"]);
/// rep.row(&["NVAlloc-LOG", "64.5"]);
/// let table = rep.render();
/// assert!(table.contains("NVAlloc-LOG"));
/// assert!(table.lines().nth(1).unwrap().starts_with('-'));
/// ```
#[derive(Debug, Default)]
pub struct Reporter {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Reporter {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Reporter {
        let mut r = Reporter::default();
        r.row(headers);
        r
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[&str]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        if self.widths.len() < cells.len() {
            self.widths.resize(cells.len(), 0);
        }
        for (i, c) in cells.iter().enumerate() {
            self.widths[i] = self.widths[i].max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (ri, row) in self.rows.iter().enumerate() {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = self.widths[i];
                if i == 0 {
                    out.push_str(&format!("{c:<w$}"));
                } else {
                    out.push_str(&format!("{c:>w$}"));
                }
            }
            out.push('\n');
            if ri == 0 {
                let total: usize =
                    self.widths.iter().sum::<usize>() + 2 * self.widths.len().saturating_sub(1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn harness_counts_ops_and_time() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(32 << 20).latency_mode(LatencyMode::Virtual),
        );
        let alloc = Which::NvallocLog.create(pool);
        let m = run_threads(&alloc, 2, |k, t| {
            for i in 0..50 {
                let root = alloc.root_offset(k * 64 + i);
                t.malloc_to(64, root).unwrap();
                t.free_from(root).unwrap();
            }
            100
        });
        assert_eq!(m.ops, 200);
        assert_eq!(m.threads, 2);
        assert!(m.elapsed_ns > 0);
        assert!(m.stats.flushes > 0);
        assert!(m.mops() > 0.0);
    }

    #[test]
    fn reporter_renders_aligned() {
        let mut r = Reporter::new(&["name", "x"]);
        r.row(&["abc", "1.25"]);
        r.row(&["a", "100"]);
        let s = r.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].contains("abc"));
    }

    #[test]
    fn reporter_zero_columns_does_not_panic() {
        // A header row with no cells used to underflow the separator width.
        let mut r = Reporter::new(&[]);
        r.row(&[]);
        let s = r.render();
        // header line + (empty) separator line + second row
        assert_eq!(s.lines().count(), 3);

        // An entirely empty reporter renders an empty table.
        let r = Reporter::default();
        assert_eq!(r.render(), "");
    }

    #[test]
    fn measurement_to_json_is_one_line_with_metrics() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(32 << 20).latency_mode(LatencyMode::Virtual),
        );
        let alloc = Which::NvallocLog.create(pool);
        let m = run_threads(&alloc, 1, |_, t| {
            for i in 0..50 {
                let root = alloc.root_offset(i);
                t.malloc_to(64, root).unwrap();
                t.free_from(root).unwrap();
            }
            100
        });
        assert!(m.metrics.tcache_hits + m.metrics.tcache_misses > 0);
        let j = m.to_json("unit_test");
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"bench\":\"unit_test\""));
        assert!(j.contains("\"metrics\":{"));
        assert!(j.contains("\"stats\":{"));
    }
}
