//! Threadtest (Berger et al., Hoard): per-thread batches of fixed-size
//! allocations, then frees — the most reflush-prone pattern (§6.2).

use std::sync::Arc;

use nvalloc::api::PmAllocator;

use crate::harness::{run_threads, BenchMeasurement};

/// Threadtest parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Iterations per thread (paper: 10⁴, scaled down by default).
    pub iterations: usize,
    /// Objects allocated per iteration (paper: 10⁵ split over threads).
    pub objects: usize,
    /// Object size in bytes (paper: 64 B).
    pub size: usize,
}

impl Params {
    /// A laptop-scale default preserving the paper's shape.
    pub fn quick(threads: usize) -> Params {
        Params { threads, iterations: 20, objects: 400, size: 64 }
    }
}

/// Run threadtest; `ops` counts allocations + frees.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let per_thread = alloc.root_count() / crate::harness::ROOT_SPREAD / p.threads.max(1);
    assert!(
        p.objects <= per_thread,
        "objects per iteration ({}) must fit the per-thread root range ({per_thread})",
        p.objects
    );
    run_threads(alloc, p.threads, |k, t| {
        // Tag the worker so profiled runs attribute samples by workload
        // name instead of symbolizing a backtrace per sample.
        nvalloc::prof::with_site("threadtest", || {
            let base = k * per_thread;
            let mut ops = 0u64;
            for _ in 0..p.iterations {
                for i in 0..p.objects {
                    t.malloc_to(p.size, crate::harness::spread_root(&**alloc, base + i))
                        .expect("alloc");
                }
                for i in 0..p.objects {
                    t.free_from(crate::harness::spread_root(&**alloc, base + i)).expect("free");
                }
                ops += 2 * p.objects as u64;
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn runs_and_balances() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let p = Params { threads: 2, iterations: 3, objects: 50, size: 64 };
        let m = run(&a, p);
        assert_eq!(m.ops, 2 * 3 * 50 * 2);
        assert_eq!(a.live_bytes(), 0, "threadtest frees everything");
    }
}
