//! The recovery workload of Fig. 18: a singly linked list of nodes with
//! uniformly distributed sizes (64–128 B in the paper), built through the
//! allocator's atomic-attach API so every node is reachable from root 0.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc_pmem::FlushKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build an `n`-node list; node *k+1* is allocated directly into node *k*'s
/// next-pointer field (offset 0 of the node). Returns the head offset.
///
/// # Panics
/// Panics on allocation failure (size the pool generously).
pub fn build(alloc: &Arc<dyn PmAllocator>, n: usize, seed: u64) -> u64 {
    let pool = Arc::clone(alloc.pool());
    let mut t = alloc.thread();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dest = alloc.root_offset(0);
    let mut head = 0;
    // Tag the build so profiled runs attribute samples by workload name
    // instead of symbolizing a backtrace per sample.
    nvalloc::prof::with_site("linkedlist", || {
        for i in 0..n {
            let size = rng.gen_range(64..=128);
            let node = t.malloc_to(size, dest).expect("alloc node");
            if i == 0 {
                head = node;
            }
            // Payload tag + zeroed next pointer, persisted like an application
            // would (required for the GC variant's reachability).
            pool.write_u64(node, 0);
            pool.write_u64(node + 8, i as u64);
            pool.charge_store(t.pm_mut(), node, 16);
            pool.flush(t.pm_mut(), node, 16, FlushKind::Data);
            pool.flush(t.pm_mut(), dest, 8, FlushKind::Data);
            pool.fence(t.pm_mut());
            dest = node; // next node chains into this node's first word
        }
    });
    head
}

/// Walk the list from root 0, returning the node count (validation after
/// recovery).
pub fn count(alloc: &Arc<dyn PmAllocator>) -> usize {
    let pool = alloc.pool();
    let mut node = pool.read_u64(alloc.root_offset(0));
    let mut n = 0;
    while node != 0 && n < 1 << 30 {
        n += 1;
        node = pool.read_u64(node);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn build_and_walk() {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off));
        let a = Which::NvallocLog.create(pool);
        build(&a, 1000, 42);
        assert_eq!(count(&a), 1000);
    }
}
