//! Remote-mix: every thread allocates mixed-size blocks and hands a
//! configurable fraction to its ring neighbour to free, so a known share
//! of all frees is *cross-thread*. This is the workload behind the
//! Fig. 22 scalability experiment: local frees exercise the lock-free
//! tcache fast path, handed-off frees exercise the per-arena remote-free
//! queues, and the steady alloc stream exercises the slab reservoirs.
//!
//! Topology: thread `k` sends root-slot indices to thread `(k+1) % t`
//! over a bounded channel and frees whatever thread `(k-1) % t` sends it.
//! Sends that would block fall back to a local free, so the ring cannot
//! deadlock and throughput is never channel-bound. Shutdown uses an
//! in-band sentinel: each thread sends [`DONE`], then drains its inbox
//! until it sees its predecessor's.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::{run_threads, spread_root, BenchMeasurement, ROOT_SPREAD};

/// Block sizes cycled through by the workload — all small classes, so
/// every free goes down the slab free path rather than the large path.
pub const SIZES: [usize; 5] = [24, 64, 96, 192, 448];

/// Large block sizes mixed in at [`Params::large_frac`] — all above
/// `LARGE_MIN`, so they take the extent path and exercise the large-shard
/// locks (including cross-shard frees when handed to the ring neighbour).
pub const LARGE_SIZES: [usize; 3] = [20 << 10, 40 << 10, 72 << 10];

/// In-band shutdown sentinel (never a valid root-slot index).
const DONE: usize = usize::MAX;

/// Remote-mix parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (ring size).
    pub threads: usize,
    /// Allocations per thread.
    pub ops: usize,
    /// Fraction of frees handed to the ring neighbour (0.0–1.0).
    pub remote_frac: f64,
    /// Fraction of allocations drawn from [`LARGE_SIZES`] instead of
    /// [`SIZES`] (0.0–1.0); these take the sharded extent path.
    pub large_frac: f64,
    /// RNG seed (per-thread streams are derived from it).
    pub seed: u64,
}

impl Params {
    /// Laptop-scale defaults with the paper-style 40 % remote share.
    pub fn quick(threads: usize) -> Params {
        Params { threads, ops: 4000, remote_frac: 0.4, large_frac: 0.0, seed: 0x5EED }
    }
}

/// Run remote-mix; `ops` counts allocations + frees (wherever performed).
///
/// # Panics
/// Panics if the allocator exposes fewer than 8 root slots per thread.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let threads = p.threads.max(1);
    let span = alloc.root_count() / ROOT_SPREAD / threads;
    assert!(span >= 8, "need at least 8 root slots per thread, have {span}");
    // Slot `base` is the local scratch slot; `base+1..base+span` is the
    // remote handoff ring. The channel capacity is kept 3 below the ring
    // size so a sender can never lap a slot the neighbour has not freed
    // yet (same margin as the prodcon workload).
    let remote_ring = span - 1;
    let cap = remote_ring.saturating_sub(3).clamp(1, 1024);
    let channels: Vec<_> =
        (0..threads).map(|_| crossbeam::channel::bounded::<usize>(cap)).collect();
    let channels = Arc::new(channels);

    run_threads(alloc, threads, move |k, t| {
        // Tag the worker so profiled runs attribute samples by workload
        // name instead of symbolizing a backtrace per sample.
        nvalloc::prof::with_site("remote_mix", || {
            let mut rng = SmallRng::seed_from_u64(p.seed ^ (k as u64) << 32);
            let tx = channels[(k + 1) % threads].0.clone();
            let rx = channels[k].1.clone();
            let base = k * span;
            let mut next_remote = 0usize;
            let mut pred_done = false;
            let mut ops = 0u64;
            for _ in 0..p.ops {
                // Free whatever the ring predecessor handed over so far.
                while let Ok(slot) = rx.try_recv() {
                    if slot == DONE {
                        pred_done = true;
                        break; // FIFO: nothing follows the sentinel
                    }
                    t.free_from(spread_root(&**alloc, slot)).expect("remote free");
                    ops += 1;
                }
                let size = if p.large_frac > 0.0 && rng.gen::<f64>() < p.large_frac {
                    LARGE_SIZES[rng.gen_range(0..LARGE_SIZES.len())]
                } else {
                    SIZES[rng.gen_range(0..SIZES.len())]
                };
                if threads > 1 && rng.gen::<f64>() < p.remote_frac {
                    let slot = base + 1 + next_remote;
                    next_remote = (next_remote + 1) % remote_ring;
                    t.malloc_to(size, spread_root(&**alloc, slot)).expect("alloc");
                    ops += 1;
                    if tx.try_send(slot).is_err() {
                        // Neighbour saturated: free here so the ring never
                        // stalls (the slot is recycled either way).
                        t.free_from(spread_root(&**alloc, slot)).expect("free");
                        ops += 1;
                    }
                } else {
                    let root = spread_root(&**alloc, base);
                    t.malloc_to(size, root).expect("alloc");
                    t.free_from(root).expect("free");
                    ops += 2;
                }
            }
            // Shutdown: push the sentinel, draining our own inbox while the
            // neighbour's channel is full (every thread keeps draining, so
            // every channel keeps emptying — no deadlock).
            while tx.try_send(DONE).is_err() {
                while let Ok(slot) = rx.try_recv() {
                    if slot == DONE {
                        pred_done = true;
                        break;
                    }
                    t.free_from(spread_root(&**alloc, slot)).expect("drain free");
                    ops += 1;
                }
                std::thread::yield_now();
            }
            while !pred_done {
                match rx.recv() {
                    Ok(slot) if slot == DONE => pred_done = true,
                    Ok(slot) => {
                        t.free_from(spread_root(&**alloc, slot)).expect("drain free");
                        ops += 1;
                    }
                    Err(_) => break,
                }
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn every_block_is_freed() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m =
            run(&a, Params { threads: 4, ops: 800, remote_frac: 0.5, large_frac: 0.0, seed: 1 });
        // Every allocation has a matching free: ops = 2 × allocs.
        assert_eq!(m.ops, 2 * 4 * 800);
        assert_eq!(a.live_bytes(), 0);
        // A healthy share of frees crossed threads.
        assert!(m.metrics.free_remote > 0, "no remote frees recorded");
    }

    #[test]
    fn single_thread_degrades_to_local_pairs() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(32 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m =
            run(&a, Params { threads: 1, ops: 500, remote_frac: 0.9, large_frac: 0.0, seed: 2 });
        assert_eq!(m.ops, 2 * 500);
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(m.metrics.free_remote, 0);
    }

    #[test]
    fn large_mix_takes_the_sharded_extent_path() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m =
            run(&a, Params { threads: 4, ops: 400, remote_frac: 0.4, large_frac: 0.2, seed: 3 });
        assert_eq!(a.live_bytes(), 0);
        // Large allocs/frees took shard locks; the counters prove the
        // extent path actually ran (and per-shard vectors are populated).
        assert!(m.metrics.large_lock_acquires > 0, "no large-shard lock traffic");
        assert!(!m.metrics.large_shard_acquires.is_empty());
        assert_eq!(
            m.metrics.large_lock_acquires,
            m.metrics.large_shard_acquires.iter().sum::<u64>()
        );
    }
}
