//! Benchmark workload generators and the multi-threaded harness.
//!
//! One module per benchmark of the paper's evaluation (§6.2/§6.4):
//! [`threadtest`], [`prodcon`], [`shbench`], [`larson`], [`dbmstest`],
//! [`fragbench`], plus the [`linkedlist`] workload used for the recovery
//! measurement (Fig. 18) and the [`remote_mix`] workload used for the
//! free-path scalability measurement (Fig. 22). All generators are
//! deterministic (seeded
//! [`rand::rngs::SmallRng`]) and generic over any
//! [`nvalloc::api::PmAllocator`].
//!
//! The [`harness`] runs a per-thread closure on `t` worker threads and
//! reports *modelled time*: each thread's wall-clock time plus the
//! nanoseconds its PM operations accrued on the virtual clock (see
//! `nvalloc-pmem`). Throughput is `total_ops / max_thread_time`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbmstest;
pub mod fragbench;
pub mod harness;
pub mod larson;
pub mod linkedlist;
pub mod prodcon;
pub mod remote_mix;
pub mod shbench;
pub mod threadtest;

pub use harness::{run_threads, BenchMeasurement, Reporter};

/// Factory for every allocator the benchmarks compare, so bench binaries
/// can iterate uniformly.
pub mod allocators {
    use std::sync::Arc;

    use nvalloc::api::PmAllocator;
    use nvalloc::{NvAllocator, NvConfig};
    use nvalloc_baselines::{Baseline, BaselineKind};
    use nvalloc_pmem::PmemPool;

    /// Every comparable allocator, by display name.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Which {
        /// PMDK-like baseline.
        Pmdk,
        /// nvm_malloc-like baseline.
        NvmMalloc,
        /// PAllocator-like baseline.
        Pallocator,
        /// Makalu-like baseline.
        Makalu,
        /// Ralloc-like baseline.
        Ralloc,
        /// NVAlloc-LOG.
        NvallocLog,
        /// NVAlloc-GC.
        NvallocGc,
        /// NVAlloc-LOG with a custom config (ablation studies).
        NvallocCustom(&'static str),
    }

    impl Which {
        /// The strongly consistent comparison set (Figs. 9/20).
        pub const STRONG: [Which; 4] =
            [Which::Pmdk, Which::NvmMalloc, Which::Pallocator, Which::NvallocLog];

        /// The weakly consistent comparison set (Fig. 10).
        pub const WEAK: [Which; 3] = [Which::Makalu, Which::Ralloc, Which::NvallocGc];

        /// The large-allocation set (Fig. 12).
        pub const LARGE: [Which; 5] =
            [Which::Pmdk, Which::NvmMalloc, Which::Pallocator, Which::Makalu, Which::NvallocLog];

        /// Instantiate over `pool`.
        ///
        /// # Panics
        /// Panics if the pool is too small for the allocator's metadata.
        pub fn create(self, pool: Arc<PmemPool>) -> Arc<dyn PmAllocator> {
            self.create_with_roots(pool, 1 << 16)
        }

        /// Instantiate with a custom root-slot count.
        ///
        /// # Panics
        /// Panics if the pool is too small for the allocator's metadata.
        pub fn create_with_roots(self, pool: Arc<PmemPool>, roots: usize) -> Arc<dyn PmAllocator> {
            match self {
                Which::Pmdk => baseline(pool, BaselineKind::Pmdk, roots),
                Which::NvmMalloc => baseline(pool, BaselineKind::NvmMalloc, roots),
                Which::Pallocator => baseline(pool, BaselineKind::Pallocator, roots),
                Which::Makalu => baseline(pool, BaselineKind::Makalu, roots),
                Which::Ralloc => baseline(pool, BaselineKind::Ralloc, roots),
                Which::NvallocLog => Arc::new(
                    NvAllocator::create(pool, NvConfig::log().roots(roots)).expect("create"),
                ),
                Which::NvallocGc => Arc::new(
                    NvAllocator::create(pool, NvConfig::gc().roots(roots)).expect("create"),
                ),
                Which::NvallocCustom(_) => panic!("use create_custom for ablation configs"),
            }
        }

        /// Like [`Which::create_with_roots`], with the NVAlloc flight
        /// recorder switched on when `trace` is set and its per-thread
        /// ring sized to `trace_events`. The baselines have no flight
        /// recorder; they ignore both.
        pub fn create_traced(
            self,
            pool: Arc<PmemPool>,
            roots: usize,
            trace: bool,
            trace_events: usize,
        ) -> Arc<dyn PmAllocator> {
            self.create_observed(pool, roots, trace, trace_events, 0, 0)
        }

        /// Like [`Which::create_traced`], additionally switching the
        /// NVAlloc heap-observatory timeline sampler on when
        /// `timeline_ns` is non-zero (the tick interval in virtual
        /// nanoseconds) and the sampled heap profiler on when
        /// `profile_sample` is non-zero (the sampling period in bytes).
        /// The baselines have no flight recorder, sampler, or profiler;
        /// they ignore all four knobs.
        pub fn create_observed(
            self,
            pool: Arc<PmemPool>,
            roots: usize,
            trace: bool,
            trace_events: usize,
            timeline_ns: u64,
            profile_sample: u64,
        ) -> Arc<dyn PmAllocator> {
            let cfg = |c: NvConfig| {
                c.roots(roots)
                    .trace(trace)
                    .trace_events_per_thread(trace_events)
                    .timeline(timeline_ns)
                    .profiling(profile_sample)
            };
            match self {
                Which::NvallocLog => {
                    Arc::new(NvAllocator::create(pool, cfg(NvConfig::log())).expect("create"))
                }
                Which::NvallocGc => {
                    Arc::new(NvAllocator::create(pool, cfg(NvConfig::gc())).expect("create"))
                }
                _ => self.create_with_roots(pool, roots),
            }
        }

        /// True for the NVAlloc series (LOG/GC/custom): the allocators
        /// whose persistence discipline the `--pmsan` sanitizer gates.
        pub fn is_nvalloc(self) -> bool {
            matches!(self, Which::NvallocLog | Which::NvallocGc | Which::NvallocCustom(_))
        }

        /// Display name matching the paper's figures.
        pub fn name(self) -> &'static str {
            match self {
                Which::Pmdk => "PMDK",
                Which::NvmMalloc => "nvm_malloc",
                Which::Pallocator => "PAllocator",
                Which::Makalu => "Makalu",
                Which::Ralloc => "Ralloc",
                Which::NvallocLog => "NVAlloc-LOG",
                Which::NvallocGc => "NVAlloc-GC",
                Which::NvallocCustom(n) => n,
            }
        }
    }

    fn baseline(pool: Arc<PmemPool>, kind: BaselineKind, roots: usize) -> Arc<dyn PmAllocator> {
        Arc::new(Baseline::create_with_roots(pool, kind, roots).expect("create baseline"))
    }

    /// Instantiate an NVAlloc ablation config under a display name.
    ///
    /// # Panics
    /// Panics if the pool is too small.
    pub fn create_custom(pool: Arc<PmemPool>, cfg: NvConfig, roots: usize) -> Arc<dyn PmAllocator> {
        Arc::new(NvAllocator::create(pool, cfg.roots(roots)).expect("create"))
    }
}
