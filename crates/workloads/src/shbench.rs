//! Shbench (MicroQuill): stress test with varying sizes 64–1000 B where
//! smaller objects are allocated and freed more frequently (§6.2).

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::{run_threads, BenchMeasurement};

/// Shbench parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Iterations per thread (paper: 10⁵, scaled down by default).
    pub iterations: usize,
    /// Live objects kept per thread.
    pub live_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Laptop-scale defaults.
    pub fn quick(threads: usize) -> Params {
        Params { threads, iterations: 8000, live_window: 64, seed: 0x5B }
    }
}

/// Size in 64–1000 B, skewed small (squaring a uniform variate).
fn skewed_size(rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen();
    64 + (u * u * 936.0) as usize
}

/// Run shbench; `ops` counts allocations + frees.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let per_thread = alloc.root_count() / crate::harness::ROOT_SPREAD / p.threads.max(1);
    assert!(p.live_window < per_thread);
    run_threads(alloc, p.threads, |k, t| {
        // Tag the worker so profiled runs attribute samples by workload
        // name instead of symbolizing a backtrace per sample.
        nvalloc::prof::with_site("shbench", || {
            let base = k * per_thread;
            let mut rng = SmallRng::seed_from_u64(p.seed ^ (k as u64) << 32);
            let mut ops = 0u64;
            let mut next = 0usize;
            let mut live = std::collections::VecDeque::new();
            for _ in 0..p.iterations {
                let slot = base + next;
                next = (next + 1) % per_thread;
                let size = skewed_size(&mut rng);
                t.malloc_to(size, crate::harness::spread_root(&**alloc, slot)).expect("alloc");
                live.push_back(slot);
                ops += 1;
                if live.len() > p.live_window {
                    let victim = live.pop_front().expect("nonempty");
                    t.free_from(crate::harness::spread_root(&**alloc, victim)).expect("free");
                    ops += 1;
                }
            }
            for slot in live {
                t.free_from(crate::harness::spread_root(&**alloc, slot)).expect("free");
                ops += 1;
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn deterministic_and_leak_free() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::Pmdk.create(pool);
        let m = run(&a, Params { threads: 2, iterations: 500, live_window: 16, seed: 1 });
        assert_eq!(m.ops, 2 * 2 * 500);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn sizes_skew_small() {
        let mut rng = SmallRng::seed_from_u64(7);
        let sizes: Vec<usize> = (0..10_000).map(|_| skewed_size(&mut rng)).collect();
        assert!(sizes.iter().all(|&s| (64..=1000).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 300).count();
        assert!(small > 5000, "small objects must dominate ({small})");
    }
}
