//! Larson (Larson & Krishnan, ISMM'98): random slot churn where objects
//! allocated by one thread are freed by another (§6.2). Two flavours:
//! Larson-small (64–256 B) and Larson-large (32–512 KB).

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::{run_threads, BenchMeasurement};

/// Larson parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Churn rounds (each round touches every slot once).
    pub rounds: usize,
    /// Slots per thread.
    pub slots: usize,
    /// Size range (inclusive).
    pub size_range: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Larson-small at laptop scale (paper: 64–256 B).
    pub fn small(threads: usize) -> Params {
        Params { threads, rounds: 12, slots: 256, size_range: (64, 256), seed: 0x1A }
    }

    /// Larson-large at laptop scale (paper: 32–512 KB).
    pub fn large(threads: usize) -> Params {
        Params { threads, rounds: 4, slots: 24, size_range: (32 << 10, 512 << 10), seed: 0x1B }
    }
}

/// Run Larson. Thread *k* frees what thread *k−1* allocated in the previous
/// round (the paper's thread-handoff behaviour); `ops` counts allocations +
/// frees.
///
/// The worker runs under a [`nvalloc::prof::with_site`] tag, so profiled
/// runs attribute sampled allocations to the workload by name instead of
/// paying a backtrace symbolization per sample.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let per_thread = alloc.root_count() / crate::harness::ROOT_SPREAD / p.threads.max(1);
    assert!(p.slots <= per_thread);
    let barrier = Arc::new(std::sync::Barrier::new(p.threads));
    run_threads(alloc, p.threads, |k, t| {
        nvalloc::prof::with_site("larson", || {
            let mut rng = SmallRng::seed_from_u64(p.seed ^ (k as u64) << 32);
            let mut ops = 0u64;
            for round in 0..p.rounds {
                // Free the slots the *previous* thread filled last round, then
                // (after every free landed) refill our own. The two barriers
                // keep free and alloc phases from racing on the same slot.
                if round > 0 {
                    let prev = (k + p.threads - 1) % p.threads;
                    let base = prev * per_thread;
                    for i in 0..p.slots {
                        t.free_from(crate::harness::spread_root(&**alloc, base + i)).expect("free");
                        ops += 1;
                    }
                }
                barrier.wait();
                let base = k * per_thread;
                for i in 0..p.slots {
                    let size = rng.gen_range(p.size_range.0..=p.size_range.1);
                    t.malloc_to(size, crate::harness::spread_root(&**alloc, base + i))
                        .expect("alloc");
                    ops += 1;
                }
                barrier.wait();
            }
            // Drain own slots.
            let base = k * per_thread;
            for i in 0..p.slots {
                t.free_from(crate::harness::spread_root(&**alloc, base + i)).expect("free");
                ops += 1;
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn small_flavour_cross_thread() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m =
            run(&a, Params { threads: 3, rounds: 4, slots: 40, size_range: (64, 256), seed: 2 });
        assert!(m.ops > 0);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn large_flavour_hits_extent_path() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m = run(
            &a,
            Params { threads: 2, rounds: 2, slots: 8, size_range: (32 << 10, 128 << 10), seed: 3 },
        );
        assert!(m.ops > 0);
        assert_eq!(a.live_bytes(), 0);
    }
}
