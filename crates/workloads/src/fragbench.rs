//! Fragbench (Rumble et al., FAST'14 §2, as used by the paper): three
//! phases — *Before* (allocate `total` bytes from a size distribution,
//! randomly deleting to cap live data), *Delete* (drop a fraction), and
//! *After* (same as Before with a second distribution). Table 1 defines
//! workloads W1–W4; peak memory vs. live data measures segregation-induced
//! fragmentation (Figs. 1b / 15).

use std::sync::Arc;

use nvalloc::api::{AllocThread, PmAllocator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::BenchMeasurement;

/// An object-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDist {
    /// Every object has the same size.
    Fixed(usize),
    /// Uniform in `[lo, hi]`.
    Uniform(usize, usize),
}

impl SizeDist {
    fn sample(self, rng: &mut SmallRng) -> usize {
        match self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// One Fragbench workload definition (a row of Table 1).
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Display name ("W1"…).
    pub name: &'static str,
    /// Size distribution of the Before phase.
    pub before: SizeDist,
    /// Fraction deleted in the Delete phase.
    pub delete_ratio: f64,
    /// Size distribution of the After phase.
    pub after: SizeDist,
}

/// Table 1: the four workloads the paper evaluates.
pub const TABLE1: [Workload; 4] = [
    Workload {
        name: "W1",
        before: SizeDist::Fixed(100),
        delete_ratio: 0.9,
        after: SizeDist::Fixed(130),
    },
    Workload {
        name: "W2",
        before: SizeDist::Uniform(100, 150),
        delete_ratio: 0.0,
        after: SizeDist::Uniform(200, 250),
    },
    Workload {
        name: "W3",
        before: SizeDist::Uniform(100, 150),
        delete_ratio: 0.9,
        after: SizeDist::Uniform(200, 250),
    },
    Workload {
        name: "W4",
        before: SizeDist::Uniform(100, 200),
        delete_ratio: 0.5,
        after: SizeDist::Uniform(1000, 2000),
    },
];

/// Fragbench scale parameters (the paper allocates 5 GB keeping ≤ 1 GB
/// live; defaults scale both down by 32×).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Total bytes allocated per phase.
    pub total_bytes: usize,
    /// Live-data cap.
    pub live_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Laptop-scale defaults (160 MB churned, 32 MB live).
    pub fn quick() -> Params {
        Params { total_bytes: 160 << 20, live_cap: 32 << 20, seed: 0xF6 }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Params {
        Params { total_bytes: 4 << 20, live_cap: 1 << 20, seed: 0xF6 }
    }
}

/// Fragbench outcome.
#[derive(Debug, Clone)]
pub struct FragResult {
    /// Workload name.
    pub workload: &'static str,
    /// Allocator name.
    pub allocator: String,
    /// Peak mapped heap bytes across the run.
    pub peak_mapped: usize,
    /// Live bytes at the end (≤ live cap).
    pub final_live: usize,
    /// Operation count and timing of the measured run.
    pub measurement: BenchMeasurement,
}

impl FragResult {
    /// Peak memory divided by the live-data cap — the fragmentation factor
    /// of Fig. 1b.
    pub fn overhead_factor(&self, live_cap: usize) -> f64 {
        self.peak_mapped as f64 / live_cap as f64
    }
}

/// One externally sampled point of a [`run_sampled`] churn run.
///
/// The allocator-agnostic fragmentation-over-time series of the
/// `fig_frag_timeline` experiment: the baselines have no timeline
/// sampler, so the driving thread polls mapped/live itself. Virtual-clock
/// reads never advance the clock, so sampling does not perturb the run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnPoint {
    /// Operations (allocs + frees) completed so far.
    pub ops: u64,
    /// The driving thread's virtual-clock reading.
    pub ns: u64,
    /// Mapped heap bytes at the sample.
    pub mapped: usize,
    /// Live (requested) bytes at the sample — Fig. 1b's denominator.
    pub live: usize,
}

/// Run one Fragbench workload single-threaded (as in the paper's Fig. 1b).
pub fn run(alloc: &Arc<dyn PmAllocator>, w: Workload, p: Params) -> FragResult {
    run_sampled(alloc, w, p, u64::MAX, &mut |_| {})
}

fn point(alloc: &Arc<dyn PmAllocator>, t: &dyn AllocThread, ops: u64, live: usize) -> ChurnPoint {
    ChurnPoint { ops, ns: t.pm().virtual_ns(), mapped: alloc.heap_mapped_bytes(), live }
}

/// [`run`] with a sampling hook: after every `every_ops`-th operation,
/// `sink` receives a [`ChurnPoint`] (pass `u64::MAX` to never sample).
/// The hook does not touch the RNG or the operation stream, so a sampled
/// run performs exactly the same allocator work as an unsampled one.
pub fn run_sampled(
    alloc: &Arc<dyn PmAllocator>,
    w: Workload,
    p: Params,
    every_ops: u64,
    sink: &mut dyn FnMut(ChurnPoint),
) -> FragResult {
    alloc.pool().stats().reset();
    let m0 = alloc.metrics();
    let mut t = alloc.thread();
    t.pm_mut().reset_clock();
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let roots = alloc.root_count();
    let mut live: Vec<(usize, usize)> = Vec::new(); // (slot, size)
    let mut live_bytes = 0usize;
    let mut free_slots: Vec<usize> = (0..roots).rev().collect();
    let mut ops = 0u64;
    let every = every_ops.max(1);

    let phase = |t: &mut Box<dyn AllocThread>,
                 rng: &mut SmallRng,
                 live: &mut Vec<(usize, usize)>,
                 live_bytes: &mut usize,
                 free_slots: &mut Vec<usize>,
                 dist: SizeDist,
                 ops: &mut u64,
                 sink: &mut dyn FnMut(ChurnPoint)| {
        let mut allocated = 0usize;
        while allocated < p.total_bytes {
            let size = dist.sample(rng);
            // Keep live data under the cap by deleting random objects.
            while *live_bytes + size > p.live_cap {
                let i = rng.gen_range(0..live.len());
                let (slot, sz) = live.swap_remove(i);
                t.free_from(alloc.root_offset(slot)).expect("free");
                *live_bytes -= sz;
                free_slots.push(slot);
                *ops += 1;
                if ops.is_multiple_of(every) {
                    sink(point(alloc, &**t, *ops, *live_bytes));
                }
            }
            let slot = free_slots.pop().expect("enough root slots");
            t.malloc_to(size, alloc.root_offset(slot)).expect("alloc");
            live.push((slot, size));
            *live_bytes += size;
            allocated += size;
            *ops += 1;
            if ops.is_multiple_of(every) {
                sink(point(alloc, &**t, *ops, *live_bytes));
            }
        }
    };

    // Tag the churn so profiled runs attribute samples by workload name
    // instead of symbolizing a backtrace per sample.
    nvalloc::prof::with_site("fragbench", || {
        // Before.
        phase(
            &mut t,
            &mut rng,
            &mut live,
            &mut live_bytes,
            &mut free_slots,
            w.before,
            &mut ops,
            sink,
        );
        // Delete.
        let del = (live.len() as f64 * w.delete_ratio) as usize;
        for _ in 0..del {
            let i = rng.gen_range(0..live.len());
            let (slot, sz) = live.swap_remove(i);
            t.free_from(alloc.root_offset(slot)).expect("free");
            live_bytes -= sz;
            free_slots.push(slot);
            ops += 1;
            if ops.is_multiple_of(every) {
                sink(point(alloc, &*t, ops, live_bytes));
            }
        }
        // After.
        phase(
            &mut t,
            &mut rng,
            &mut live,
            &mut live_bytes,
            &mut free_slots,
            w.after,
            &mut ops,
            sink,
        );
    });

    let elapsed_ns = t.pm().virtual_ns() + ops * crate::harness::CPU_NS_PER_OP;
    drop(t); // merge the thread's telemetry histograms before snapshotting
    FragResult {
        workload: w.name,
        allocator: alloc.name(),
        peak_mapped: alloc.peak_mapped_bytes(),
        final_live: live_bytes,
        measurement: BenchMeasurement {
            allocator: alloc.name(),
            threads: 1,
            ops,
            elapsed_ns,
            wall_ns: 0,
            stats: alloc.pool().stats().snapshot(),
            peak_mapped: alloc.peak_mapped_bytes(),
            mapped: alloc.heap_mapped_bytes(),
            metrics: alloc.metrics().since(&m0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    fn run_tiny(which: Which, w: Workload) -> FragResult {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off));
        let a = which.create_with_roots(pool, 1 << 17);
        run(&a, w, Params::tiny())
    }

    #[test]
    fn live_cap_respected() {
        let r = run_tiny(Which::NvallocLog, TABLE1[0]);
        assert!(r.final_live <= Params::tiny().live_cap);
        assert!(r.measurement.ops > 0);
        assert!(r.peak_mapped > 0);
    }

    #[test]
    fn w1_fragmenting_baseline_uses_more_than_nvalloc() {
        let b = run_tiny(Which::Pmdk, TABLE1[0]);
        let n = run_tiny(Which::NvallocLog, TABLE1[0]);
        assert!(
            n.peak_mapped <= b.peak_mapped,
            "NVAlloc ({}) should not exceed PMDK ({})",
            n.peak_mapped,
            b.peak_mapped
        );
    }

    #[test]
    fn sampled_run_is_observationally_identical_to_unsampled() {
        let plain = run_tiny(Which::NvallocLog, TABLE1[2]);
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off));
        let a = Which::NvallocLog.create_with_roots(pool, 1 << 17);
        let mut pts: Vec<ChurnPoint> = Vec::new();
        let sampled = run_sampled(&a, TABLE1[2], Params::tiny(), 500, &mut |pt| pts.push(pt));
        // The hook only reads; the allocator work is identical.
        assert_eq!(sampled.measurement.ops, plain.measurement.ops);
        assert_eq!(sampled.final_live, plain.final_live);
        assert_eq!(sampled.peak_mapped, plain.peak_mapped);
        assert!(!pts.is_empty(), "tiny run at every=500 must sample");
        assert!(pts.windows(2).all(|w| w[0].ops < w[1].ops), "ops strictly increase");
        assert!(pts.iter().all(|pt| pt.live <= Params::tiny().live_cap));
        assert!(pts.iter().all(|pt| pt.mapped >= pt.live), "mapped covers live data");
    }

    #[test]
    fn table1_matches_paper() {
        assert_eq!(TABLE1[0].before, SizeDist::Fixed(100));
        assert_eq!(TABLE1[1].delete_ratio, 0.0);
        assert_eq!(TABLE1[3].after, SizeDist::Uniform(1000, 2000));
    }
}
