//! DBMStest (Durner et al., DaMoN'19): TPC-DS-like database allocation —
//! batches of large objects (32–512 KB, Poisson-ish sizes) with 90 %
//! random deletion per iteration (§6.2).

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::harness::{run_threads, BenchMeasurement};

/// DBMStest parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Objects per iteration per thread (paper: 10⁴/t).
    pub objects: usize,
    /// Warmup iterations (paper: 50).
    pub warmup: usize,
    /// Measured iterations (paper: 50).
    pub iterations: usize,
    /// Fraction deleted per iteration (paper: 0.9).
    pub delete_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Laptop-scale defaults.
    pub fn quick(threads: usize) -> Params {
        Params { threads, objects: 24, warmup: 2, iterations: 4, delete_ratio: 0.9, seed: 0xDB }
    }
}

/// Poisson-flavoured size in 32–512 KB: the sum of a few uniform draws
/// clusters around the mid-range like the paper's Poisson setting.
fn poisson_size(rng: &mut SmallRng) -> usize {
    let lo = 32 << 10;
    let hi = 512 << 10;
    let mid: usize = (0..4).map(|_| rng.gen_range(lo / 4..=hi / 4)).sum();
    mid.clamp(lo, hi)
}

/// Run DBMStest; `ops` counts allocations + frees in the measured phase.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let per_thread = alloc.root_count() / crate::harness::ROOT_SPREAD / p.threads.max(1);
    run_threads(alloc, p.threads, |k, t| {
        // Tag the worker so profiled runs attribute samples by workload
        // name instead of symbolizing a backtrace per sample.
        nvalloc::prof::with_site("dbmstest", || {
            let base = k * per_thread;
            let mut rng = SmallRng::seed_from_u64(p.seed ^ (k as u64) << 32);
            let mut live: Vec<usize> = Vec::new();
            // Free-slot stack: a slot is reused only after its object is freed.
            let mut free_slots: Vec<usize> = (0..per_thread).rev().map(|i| base + i).collect();
            let mut ops = 0u64;
            for iter in 0..p.warmup + p.iterations {
                let measured = iter >= p.warmup;
                for _ in 0..p.objects {
                    let slot = free_slots.pop().expect("enough root slots per thread");
                    let size = poisson_size(&mut rng);
                    t.malloc_to(size, crate::harness::spread_root(&**alloc, slot)).expect("alloc");
                    live.push(slot);
                    if measured {
                        ops += 1;
                    }
                }
                live.shuffle(&mut rng);
                let del = (live.len() as f64 * p.delete_ratio) as usize;
                for slot in live.drain(..del) {
                    t.free_from(crate::harness::spread_root(&**alloc, slot)).expect("free");
                    free_slots.push(slot);
                    if measured {
                        ops += 1;
                    }
                }
            }
            for slot in live {
                t.free_from(crate::harness::spread_root(&**alloc, slot)).expect("free");
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn large_object_churn() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocLog.create(pool);
        let m = run(&a, Params::quick(2));
        assert!(m.ops > 0);
        assert_eq!(a.live_bytes(), 0);
        // All traffic is large: no small-class slabs appear.
        assert!(m.stats.flushes > 0);
    }

    #[test]
    fn poisson_sizes_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = poisson_size(&mut rng);
            assert!((32 << 10..=512 << 10).contains(&s));
        }
    }
}
