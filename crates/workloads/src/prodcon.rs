//! Prod-con (Hoard/Schneider et al.): producer/consumer thread pairs — one
//! allocates, its partner frees (§6.2). Exercises cross-thread frees.

use std::sync::Arc;

use nvalloc::api::PmAllocator;

use crate::harness::{run_threads, BenchMeasurement};

/// Prod-con parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (rounded up to an even count; half produce, half
    /// consume).
    pub threads: usize,
    /// Objects exchanged per pair (paper: 2×10⁷/t).
    pub objects: usize,
    /// Object size (paper: 64 B).
    pub size: usize,
    /// Producer batch size per channel message.
    pub batch: usize,
}

impl Params {
    /// Laptop-scale defaults.
    pub fn quick(threads: usize) -> Params {
        Params { threads, objects: 4000, size: 64, batch: 32 }
    }
}

/// Run prod-con; `ops` counts allocations + frees.
pub fn run(alloc: &Arc<dyn PmAllocator>, p: Params) -> BenchMeasurement {
    let pairs = (p.threads / 2).max(1);
    let threads = pairs * 2;
    let per_pair = alloc.root_count() / crate::harness::ROOT_SPREAD / pairs;
    // Per-pair bounded channels carrying batches of root-slot indices. The
    // capacity bounds the in-flight objects so the producer can never lap
    // the consumer around the slot ring.
    let max_batches = (per_pair / p.batch).saturating_sub(3).clamp(1, 64);
    let channels: Vec<_> =
        (0..pairs).map(|_| crossbeam::channel::bounded::<Vec<usize>>(max_batches)).collect();
    let channels = Arc::new(channels);

    run_threads(alloc, threads, move |k, t| {
        // Tag the worker so profiled runs attribute samples by workload
        // name instead of symbolizing a backtrace per sample.
        nvalloc::prof::with_site("prodcon", || {
            let pair = k / 2;
            let base = pair * per_pair;
            let mut ops = 0u64;
            if k % 2 == 0 {
                // Producer.
                let tx = channels[pair].0.clone();
                let mut next = 0usize;
                let mut batch = Vec::with_capacity(p.batch);
                for _ in 0..p.objects {
                    let slot = base + next;
                    next = (next + 1) % per_pair;
                    t.malloc_to(p.size, crate::harness::spread_root(&**alloc, slot))
                        .expect("alloc");
                    ops += 1;
                    batch.push(slot);
                    if batch.len() == p.batch {
                        tx.send(std::mem::take(&mut batch)).expect("consumer alive");
                    }
                }
                if !batch.is_empty() {
                    tx.send(batch).expect("consumer alive");
                }
                drop(tx);
            } else {
                // Consumer: the producer keeps a clone of the sender, so rely
                // on the object count.
                let rx = channels[pair].1.clone();
                let mut freed = 0usize;
                while freed < p.objects {
                    let batch = rx.recv().expect("producer sends all objects");
                    for slot in batch {
                        t.free_from(crate::harness::spread_root(&**alloc, slot)).expect("free");
                        freed += 1;
                        ops += 1;
                    }
                }
            }
            ops
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::Which;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn pairs_exchange_everything() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = Which::NvallocGc.create(pool);
        let m = run(&a, Params { threads: 4, objects: 500, size: 64, batch: 16 });
        assert_eq!(m.ops, 2 * 2 * 500);
        assert_eq!(a.live_bytes(), 0);
    }
}
