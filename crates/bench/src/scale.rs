//! Benchmark scale control.
//!
//! The paper runs at testbed scale (5 GB heaps, 30 s Larson runs, 50 M KV
//! operations); these binaries default to a laptop scale that preserves
//! every per-operation effect, with `--quick` for smoke runs and `--full`
//! to push toward paper scale. All effects reproduced here are
//! per-operation (reflush distances, write locality, slab policy), so the
//! shapes are scale-invariant.

use std::io::Write as _;
use std::path::PathBuf;

use nvalloc::api::PmAllocator;
use nvalloc_workloads::BenchMeasurement;

/// Scale factor and thread sweep for an experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Multiplier on operation counts (1.0 = default laptop scale).
    pub factor: f64,
    /// Thread counts to sweep (paper: 1–64).
    pub threads: Vec<usize>,
    /// Destination for machine-readable JSON-lines output (`--json`).
    pub json: Option<PathBuf>,
    /// Exact per-thread operation count (`--ops`), overriding the scaled
    /// default in experiments that honour it (currently Fig. 22).
    pub fixed_ops: Option<usize>,
    /// Destination for a Chrome trace-event JSON export of the flight
    /// recorder (`--trace`). Turns `NvConfig::trace` on for the NVAlloc
    /// series; each finished allocator overwrites the file, so the last
    /// one of the run wins.
    pub trace: Option<PathBuf>,
    /// Destination for a heap-file image of the last finished allocator's
    /// pool (`--save-pool`), written after an orderly `exit()` so the
    /// image audits clean under `nvalloc_doctor`.
    pub save_pool: Option<PathBuf>,
    /// Flight-recorder ring capacity per thread (`--trace-events`,
    /// default 4096). Rings drop oldest on wrap, so raise this to
    /// capture a whole run — e.g. a morph that happens mid-workload —
    /// at 40 B per event of DRAM.
    pub trace_events: usize,
    /// Destination for a JSON-lines export of the heap-observatory
    /// timeline (`--timeline`). Turns `NvConfig::timeline` on for the
    /// NVAlloc series; like `--trace`, each finished allocator
    /// overwrites the file, so the last one of the run wins.
    pub timeline: Option<PathBuf>,
    /// Timeline tick interval in virtual nanoseconds
    /// (`--timeline-interval`, default 50 µs of virtual time).
    pub timeline_interval: u64,
    /// Destination for the sampled heap profile (`--profile`). Turns
    /// `NvConfig::profiling` on for the NVAlloc series; the site-table
    /// JSON lands at the given path and the collapsed-stack text at the
    /// same path with `.collapsed` appended. Like `--trace`, each
    /// finished allocator overwrites the files, so the last one of the
    /// run wins.
    pub profile: Option<PathBuf>,
    /// Sampling period in bytes (`--profile-sample`, default 512 KiB);
    /// only consulted when `--profile` was given.
    pub profile_sample: u64,
    /// Run with the persist-ordering sanitizer (`--pmsan`): pools are
    /// built with shadow persist-state, and [`Scale::finish`] prints the
    /// violation report and **panics on any violation** — the CI
    /// zero-violation gate. Throughput numbers from sanitized runs
    /// measure the same modelled work (the sanitizer only observes the
    /// persistence stream) but pay its DRAM/atomics overhead.
    pub pmsan: bool,
    /// Run the allocator-service comparison (`--service`): experiments
    /// that honour it (currently Fig. 22) add a second NVAlloc series
    /// built with `NvConfig::service(true)`, so the service-on/off tail
    /// latencies come from one binary invocation.
    pub service: bool,
}

impl Scale {
    /// Parse from `std::env::args`: `--quick` (×0.25), `--full` (×4),
    /// `--threads a,b,c`, `--json <path>`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut s = Scale::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => s.factor = 0.25,
                "--full" => s.factor = 4.0,
                "--factor" => {
                    i += 1;
                    s.factor = args[i].parse().expect("--factor takes a number");
                }
                "--ops" => {
                    i += 1;
                    s.fixed_ops = Some(args[i].parse().expect("--ops takes a count"));
                }
                "--threads" => {
                    i += 1;
                    s.threads = args[i]
                        .split(',')
                        .map(|x| x.parse().expect("--threads takes a,b,c"))
                        .collect();
                }
                "--json" => {
                    i += 1;
                    let path = PathBuf::from(args.get(i).expect("--json takes an output path"));
                    // Create/truncate up front so a failed run leaves an
                    // empty file rather than a stale one.
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--json {}: {e}", path.display()));
                    s.json = Some(path);
                }
                "--trace" => {
                    i += 1;
                    let path = PathBuf::from(args.get(i).expect("--trace takes an output path"));
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--trace {}: {e}", path.display()));
                    s.trace = Some(path);
                }
                "--save-pool" => {
                    i += 1;
                    let path =
                        PathBuf::from(args.get(i).expect("--save-pool takes an output path"));
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--save-pool {}: {e}", path.display()));
                    s.save_pool = Some(path);
                }
                "--trace-events" => {
                    i += 1;
                    s.trace_events =
                        args[i].parse().expect("--trace-events takes a per-thread ring capacity");
                }
                "--timeline" => {
                    i += 1;
                    let path =
                        PathBuf::from(args.get(i).expect("--timeline takes an output path"));
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--timeline {}: {e}", path.display()));
                    s.timeline = Some(path);
                }
                "--timeline-interval" => {
                    i += 1;
                    s.timeline_interval =
                        args[i].parse().expect("--timeline-interval takes virtual nanoseconds");
                }
                "--profile" => {
                    i += 1;
                    let path = PathBuf::from(args.get(i).expect("--profile takes an output path"));
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--profile {}: {e}", path.display()));
                    s.profile = Some(path);
                }
                "--profile-sample" => {
                    i += 1;
                    s.profile_sample =
                        args[i].parse().expect("--profile-sample takes a byte period");
                }
                "--pmsan" => s.pmsan = true,
                "--service" => s.service = true,
                other => panic!(
                    "unknown flag {other} (try --quick/--full/--threads 1,2,4/--ops 10000/--json out.jsonl/--trace t.json/--trace-events 1000000/--timeline tl.jsonl/--timeline-interval 50000/--profile prof.json/--profile-sample 524288/--save-pool p.heap/--pmsan/--service)"
                ),
            }
            i += 1;
        }
        s
    }

    /// `n` scaled by the factor, at least `min`.
    pub fn ops(&self, n: usize, min: usize) -> usize {
        ((n as f64 * self.factor) as usize).max(min)
    }

    /// The paper's full thread sweep, possibly overridden.
    pub fn threads(&self) -> &[usize] {
        &self.threads
    }

    /// True when `--trace` was given; experiments switch
    /// `NvConfig::trace` on for the NVAlloc allocators they build.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Per-thread flight-recorder ring capacity (`--trace-events`).
    pub fn trace_events(&self) -> usize {
        self.trace_events
    }

    /// The `NvConfig::timeline` interval experiments should build their
    /// NVAlloc allocators with: the configured tick interval when
    /// `--timeline` was given, else 0 (sampler off).
    pub fn timeline_ns(&self) -> u64 {
        if self.timeline.is_some() {
            self.timeline_interval
        } else {
            0
        }
    }

    /// The `NvConfig::profiling` sampling period experiments should build
    /// their NVAlloc allocators with: the configured byte period when
    /// `--profile` was given, else 0 (profiler off).
    pub fn profile_sample(&self) -> u64 {
        if self.profile.is_some() {
            self.profile_sample
        } else {
            0
        }
    }

    /// Post-run hooks for one finished allocator: export its flight
    /// recorder as Chrome trace JSON (`--trace`) and/or save its pool as
    /// a heap image (`--save-pool`). Later calls overwrite earlier ones,
    /// so the last allocator of a run wins; CI narrows the sweep with
    /// `--threads` to make that deterministic. The pool is saved after an
    /// orderly `exit()` so the image audits clean.
    pub fn finish(&self, alloc: &dyn PmAllocator) {
        if let Some(path) = &self.trace {
            if let Some(json) = alloc.trace_json() {
                std::fs::write(path, json)
                    .unwrap_or_else(|e| panic!("--trace {}: {e}", path.display()));
            }
        }
        if let Some(path) = &self.timeline {
            if let Some(json) = alloc.timeline_json() {
                std::fs::write(path, json)
                    .unwrap_or_else(|e| panic!("--timeline {}: {e}", path.display()));
            }
        }
        // Sanitized allocators (pmsan pools) get an orderly shutdown —
        // quiesce drains deferred frees, exit persists volatile caches —
        // and then the zero-violation gate. Baselines run on plain pools
        // even under `--pmsan` (their naive persistence patterns are the
        // *subject* of the motivation figures), so this is a no-op for
        // them.
        let sanitized = self.pmsan && alloc.pool().pmsan_enabled();
        // Profiled allocators are quiesced first so the retained-set rows
        // (leak report) are marked before the dump; the dump itself is
        // taken after `exit()` so it reflects the final heap.
        let profiled = self.profile.is_some() && alloc.profile_json().is_some();
        if sanitized || profiled {
            alloc.quiesce();
        }
        if sanitized || profiled || self.save_pool.is_some() {
            alloc.exit();
        }
        if profiled {
            self.write_profile(alloc);
        }
        if let Some(path) = &self.save_pool {
            alloc
                .pool()
                .save_heap_file(path, false)
                .unwrap_or_else(|e| panic!("--save-pool {}: {e}", path.display()));
        }
        if sanitized {
            let report = alloc.pool().pmsan_report().expect("sanitized pool carries state");
            println!("pmsan: {}", report.to_json());
            assert_eq!(
                report.total(),
                0,
                "persist-ordering violations detected (see report above)"
            );
        }
    }

    /// The profiled-shutdown tail of [`Scale::finish`] alone — quiesce
    /// (marks the retained-set rows), exit, and write the `--profile`
    /// dumps. For experiments that export their trace/timeline
    /// themselves (the frag timeline's multi-series file lands at the
    /// `--timeline` path, which `finish` would overwrite).
    pub fn finish_profile(&self, alloc: &dyn PmAllocator) {
        if self.profile.is_none() || alloc.profile_json().is_none() {
            return;
        }
        alloc.quiesce();
        alloc.exit();
        self.write_profile(alloc);
    }

    /// Write the `--profile` JSON dump and its `.collapsed` companion.
    fn write_profile(&self, alloc: &dyn PmAllocator) {
        let path = self.profile.as_ref().expect("profiled implies --profile");
        let json = alloc.profile_json().expect("profiled implies a profiler");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("--profile {}: {e}", path.display()));
        if let Some(folded) = alloc.profile_collapsed() {
            let mut fp = path.as_os_str().to_owned();
            fp.push(".collapsed");
            std::fs::write(&fp, folded)
                .unwrap_or_else(|e| panic!("--profile {}: {e}", path.display()));
        }
    }

    /// Append one measurement as a JSON line to the `--json` file, if any.
    ///
    /// `bench` names the experiment (and sub-series, e.g.
    /// `"fig09_small_strong"`); it lands in the record's `bench` field.
    pub fn emit(&self, bench: &str, m: &BenchMeasurement) {
        let Some(path) = &self.json else { return };
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("--json {}: {e}", path.display()));
        writeln!(f, "{}", m.to_json(bench)).expect("write --json line");
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale {
            factor: 1.0,
            threads: vec![1, 2, 4, 8, 16, 32, 64],
            json: None,
            fixed_ops: None,
            trace: None,
            save_pool: None,
            trace_events: 4096,
            timeline: None,
            timeline_interval: 50_000,
            profile: None,
            profile_sample: 512 << 10,
            pmsan: false,
            service: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_minimum() {
        let s = Scale { factor: 0.001, ..Scale::default() };
        assert_eq!(s.ops(1000, 10), 10);
        let s = Scale { factor: 2.0, ..Scale::default() };
        assert_eq!(s.ops(1000, 10), 2000);
    }

    #[test]
    fn timeline_interval_gated_on_flag() {
        let s = Scale::default();
        assert_eq!(s.timeline_ns(), 0, "no --timeline → sampler off");
        let s = Scale { timeline: Some(PathBuf::from("tl.jsonl")), ..Scale::default() };
        assert_eq!(s.timeline_ns(), 50_000, "default interval once --timeline is given");
    }

    #[test]
    fn profile_sample_gated_on_flag() {
        let s = Scale::default();
        assert_eq!(s.profile_sample(), 0, "no --profile → profiler off");
        let s = Scale { profile: Some(PathBuf::from("prof.json")), ..Scale::default() };
        assert_eq!(s.profile_sample(), 512 << 10, "default period once --profile is given");
        let s = Scale {
            profile: Some(PathBuf::from("prof.json")),
            profile_sample: 4096,
            ..Scale::default()
        };
        assert_eq!(s.profile_sample(), 4096);
    }

    #[test]
    fn emit_without_json_path_is_a_noop() {
        let s = Scale::default();
        let m = BenchMeasurement {
            allocator: "x".into(),
            threads: 1,
            ops: 0,
            elapsed_ns: 0,
            wall_ns: 0,
            stats: Default::default(),
            peak_mapped: 0,
            mapped: 0,
            metrics: Default::default(),
        };
        s.emit("noop", &m); // must not panic or touch the filesystem
    }

    #[test]
    fn finish_without_flags_is_a_noop() {
        let s = Scale::default();
        let pool = nvalloc_pmem::PmemPool::new(
            nvalloc_pmem::PmemConfig::default()
                .pool_size(32 << 20)
                .latency_mode(nvalloc_pmem::LatencyMode::Off),
        );
        let alloc = nvalloc::NvAllocator::create(pool, nvalloc::NvConfig::log().roots(16)).unwrap();
        s.finish(&alloc); // no --trace/--save-pool: must not touch the fs
    }
}
