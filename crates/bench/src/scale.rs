//! Benchmark scale control.
//!
//! The paper runs at testbed scale (5 GB heaps, 30 s Larson runs, 50 M KV
//! operations); these binaries default to a laptop scale that preserves
//! every per-operation effect, with `--quick` for smoke runs and `--full`
//! to push toward paper scale. All effects reproduced here are
//! per-operation (reflush distances, write locality, slab policy), so the
//! shapes are scale-invariant.

use std::io::Write as _;
use std::path::PathBuf;

use nvalloc_workloads::BenchMeasurement;

/// Scale factor and thread sweep for an experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Multiplier on operation counts (1.0 = default laptop scale).
    pub factor: f64,
    /// Thread counts to sweep (paper: 1–64).
    pub threads: Vec<usize>,
    /// Destination for machine-readable JSON-lines output (`--json`).
    pub json: Option<PathBuf>,
    /// Exact per-thread operation count (`--ops`), overriding the scaled
    /// default in experiments that honour it (currently Fig. 22).
    pub fixed_ops: Option<usize>,
}

impl Scale {
    /// Parse from `std::env::args`: `--quick` (×0.25), `--full` (×4),
    /// `--threads a,b,c`, `--json <path>`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut s = Scale::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => s.factor = 0.25,
                "--full" => s.factor = 4.0,
                "--factor" => {
                    i += 1;
                    s.factor = args[i].parse().expect("--factor takes a number");
                }
                "--ops" => {
                    i += 1;
                    s.fixed_ops = Some(args[i].parse().expect("--ops takes a count"));
                }
                "--threads" => {
                    i += 1;
                    s.threads = args[i]
                        .split(',')
                        .map(|x| x.parse().expect("--threads takes a,b,c"))
                        .collect();
                }
                "--json" => {
                    i += 1;
                    let path = PathBuf::from(args.get(i).expect("--json takes an output path"));
                    // Create/truncate up front so a failed run leaves an
                    // empty file rather than a stale one.
                    std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("--json {}: {e}", path.display()));
                    s.json = Some(path);
                }
                other => panic!(
                    "unknown flag {other} (try --quick/--full/--threads 1,2,4/--ops 10000/--json out.jsonl)"
                ),
            }
            i += 1;
        }
        s
    }

    /// `n` scaled by the factor, at least `min`.
    pub fn ops(&self, n: usize, min: usize) -> usize {
        ((n as f64 * self.factor) as usize).max(min)
    }

    /// The paper's full thread sweep, possibly overridden.
    pub fn threads(&self) -> &[usize] {
        &self.threads
    }

    /// Append one measurement as a JSON line to the `--json` file, if any.
    ///
    /// `bench` names the experiment (and sub-series, e.g.
    /// `"fig09_small_strong"`); it lands in the record's `bench` field.
    pub fn emit(&self, bench: &str, m: &BenchMeasurement) {
        let Some(path) = &self.json else { return };
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("--json {}: {e}", path.display()));
        writeln!(f, "{}", m.to_json(bench)).expect("write --json line");
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale { factor: 1.0, threads: vec![1, 2, 4, 8, 16, 32, 64], json: None, fixed_ops: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_minimum() {
        let s = Scale { factor: 0.001, ..Scale::default() };
        assert_eq!(s.ops(1000, 10), 10);
        let s = Scale { factor: 2.0, ..Scale::default() };
        assert_eq!(s.ops(1000, 10), 2000);
    }

    #[test]
    fn emit_without_json_path_is_a_noop() {
        let s = Scale::default();
        let m = BenchMeasurement {
            allocator: "x".into(),
            threads: 1,
            ops: 0,
            elapsed_ns: 0,
            wall_ns: 0,
            stats: Default::default(),
            peak_mapped: 0,
            mapped: 0,
            metrics: Default::default(),
        };
        s.emit("noop", &m); // must not panic or touch the filesystem
    }
}
