//! Experiment implementations that regenerate every figure and table of
//! the NVAlloc paper's evaluation (§6). Each `fig*` module exposes
//! `run(&Scale)`; the `src/bin/*` binaries are thin wrappers, and
//! `fig_all` runs the lot. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scale;

pub use scale::Scale;
