//! Figs. 9, 10, 20: small-allocation throughput sweeps over thread counts
//! for the strongly consistent (PMDK, nvm_malloc, PAllocator, NVAlloc-LOG)
//! and weakly consistent (Makalu, Ralloc, NVAlloc-GC) sets, on ADR and
//! emulated eADR.

use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{larson, prodcon, shbench, threadtest, BenchMeasurement, Reporter};

use crate::experiments::{mops_cell, pool_eadr_mb_san, pool_mb_san};
use crate::Scale;

/// The four small-allocation benchmarks of Figs. 9/10.
pub const BENCHES: [&str; 4] = ["Threadtest", "Prod-con", "Shbench", "Larson-small"];

fn run_bench(
    which: Which,
    bench: &str,
    threads: usize,
    scale: &Scale,
    eadr: bool,
) -> BenchMeasurement {
    let san = scale.pmsan && which.is_nvalloc();
    let pool = if eadr { pool_eadr_mb_san(512, san) } else { pool_mb_san(512, san) };
    let alloc = which.create_observed(
        pool,
        1 << 19,
        scale.tracing(),
        scale.trace_events(),
        scale.timeline_ns(),
        scale.profile_sample(),
    );
    let m = match bench {
        "Threadtest" => {
            let mut p = threadtest::Params::quick(threads);
            p.iterations = scale.ops(p.iterations, 2);
            p.objects = p.objects.min((1 << 19) / 8 / threads.max(1)).max(16);
            threadtest::run(&alloc, p)
        }
        "Prod-con" => {
            let mut p = prodcon::Params::quick(threads);
            p.objects = scale.ops(p.objects, 100);
            prodcon::run(&alloc, p)
        }
        "Shbench" => {
            let mut p = shbench::Params::quick(threads);
            p.iterations = scale.ops(p.iterations, 200);
            p.live_window = p.live_window.min((1 << 19) / 8 / threads.max(1) / 2).max(4);
            shbench::run(&alloc, p)
        }
        "Larson-small" => {
            let mut p = larson::Params::small(threads);
            p.rounds = scale.ops(p.rounds, 2);
            p.slots = p.slots.min((1 << 19) / 8 / threads.max(1)).max(8);
            larson::run(&alloc, p)
        }
        other => unreachable!("unknown bench {other}"),
    };
    scale.finish(&*alloc);
    m
}

fn sweep(title: &str, slug: &str, set: &[Which], scale: &Scale, eadr: bool) {
    for bench in BENCHES {
        println!("\n== {title}: {bench} (Mops/s by thread count) ==");
        let mut headers = vec!["threads".to_string()];
        headers.extend(set.iter().map(|w| w.name().to_string()));
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Reporter::new(&hrefs);
        for &t in scale.threads() {
            let mut row = vec![t.to_string()];
            for &w in set {
                let m = run_bench(w, bench, t, scale, eadr);
                scale.emit(&format!("{slug}/{bench}"), &m);
                row.push(mops_cell(m.mops()));
            }
            let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            rep.row(&rrefs);
        }
        print!("{}", rep.render());
    }
}

/// Fig. 9: strongly consistent allocators, ADR.
pub fn run_fig09(scale: &Scale) {
    sweep("Fig 9 (strong, ADR)", "fig09_small_strong", &Which::STRONG, scale, false);
}

/// Fig. 10: weakly consistent allocators, ADR.
pub fn run_fig10(scale: &Scale) {
    sweep("Fig 10 (weak, ADR)", "fig10_small_weak", &Which::WEAK, scale, false);
}

/// Fig. 20: strongly consistent allocators on emulated eADR.
pub fn run_fig20(scale: &Scale) {
    sweep("Fig 20 (strong, eADR)", "fig20_small_eadr", &Which::STRONG, scale, true);
}
