//! One module per paper figure/table. Every module's `run(&Scale)` prints
//! the regenerated rows/series to stdout.

pub mod breakdown;
pub mod fig_fptree;
pub mod fig_frag;
pub mod fig_frag_timeline;
pub mod fig_global;
pub mod fig_large;
pub mod fig_recovery;
pub mod fig_scalability;
pub mod fig_small;
pub mod fig_space;
pub mod motivation;
pub mod stripes;

use std::sync::Arc;

use nvalloc_pmem::{LatencyMode, PmemConfig, PmemMode, PmemPool};

/// A virtual-latency ADR pool of `mb` megabytes.
pub fn pool_mb(mb: usize) -> Arc<PmemPool> {
    pool_mb_san(mb, false)
}

/// [`pool_mb`] with the persist-ordering sanitizer optionally enabled
/// (`--pmsan` runs; NVAlloc series only — see [`crate::Scale::finish`]).
pub fn pool_mb_san(mb: usize, pmsan: bool) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Virtual).pmsan(pmsan),
    )
}

/// A sleep-latency ADR pool of `mb` megabytes: modelled PM latency is
/// actually slept off, so wall-clock measurements see overlapping PM
/// stalls and lock-held stalls serialise (the Fig. 22 scalability run).
pub fn pool_sleep_mb(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Sleep))
}

/// A virtual-latency eADR pool of `mb` megabytes (§6.7 experiments).
pub fn pool_eadr_mb(mb: usize) -> Arc<PmemPool> {
    pool_eadr_mb_san(mb, false)
}

/// [`pool_eadr_mb`] with the persist-ordering sanitizer optionally on.
pub fn pool_eadr_mb_san(mb: usize, pmsan: bool) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(mb << 20)
            .latency_mode(LatencyMode::Virtual)
            .pmem_mode(PmemMode::Eadr)
            .pmsan(pmsan),
    )
}

/// Format a throughput cell (Mops/s).
pub fn mops_cell(m: f64) -> String {
    if m >= 100.0 {
        format!("{m:.0}")
    } else if m >= 10.0 {
        format!("{m:.1}")
    } else {
        format!("{m:.2}")
    }
}

/// Format a byte count as MiB.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}
