//! Figs. 16(a), 16(b), 19: sensitivity to the number of bit stripes (ADR
//! and eADR) and to the slab-morphing SU threshold.

use nvalloc::NvConfig;
use nvalloc_workloads::allocators::create_custom;
use nvalloc_workloads::{fragbench, threadtest, Reporter};

use crate::experiments::motivation::frag_params;
use crate::experiments::{mib, pool_eadr_mb, pool_mb};
use crate::Scale;

const STRIPE_SWEEP: [usize; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32];

fn stripes_run(scale: &Scale, slug: &str, eadr: bool, threads: &[usize]) {
    let mut headers = vec!["stripes".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t} thr (ms)")));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Reporter::new(&hrefs);
    for s in STRIPE_SWEEP {
        let mut row = vec![s.to_string()];
        for &t in threads {
            let cfg = NvConfig::log().stripes(s).morphing(false);
            // Under eADR NVAlloc normally disables interleaving (§6.7); the
            // sweep forces it on to show stripes no longer matter.
            let cfg = NvConfig { auto_eadr: false, ..cfg };
            let pool = if eadr { pool_eadr_mb(512) } else { pool_mb(512) };
            let alloc = create_custom(
                pool,
                cfg.trace(scale.tracing()).trace_events_per_thread(scale.trace_events()),
                1 << 19,
            );
            let mut p = threadtest::Params::quick(t);
            p.iterations = scale.ops(p.iterations, 2);
            p.objects = p.objects.min((1 << 19) / 8 / t.max(1)).max(16);
            let m = threadtest::run(&alloc, p);
            scale.emit(&format!("{slug}/stripes={s}"), &m);
            scale.finish(&*alloc);
            row.push(format!("{:.2}", m.elapsed_ms()));
        }
        let rrefs: Vec<&str> = row.iter().map(|x| x.as_str()).collect();
        rep.row(&rrefs);
    }
    print!("{}", rep.render());
}

/// Fig. 16(a): stripes × threads on Threadtest (ADR).
pub fn run_fig16a(scale: &Scale) {
    println!("\n== Fig 16a: bit-stripe sweep on Threadtest (ADR; lower is better) ==");
    stripes_run(scale, "fig16a_stripes", false, &[1, 2, 4, 8, 16, 32]);
}

/// Fig. 19: stripes sweep on emulated eADR (expected flat).
pub fn run_fig19(scale: &Scale) {
    println!("\n== Fig 19: bit-stripe sweep on Threadtest (eADR; expected flat) ==");
    stripes_run(scale, "fig19_stripes_eadr", true, &[4]);
}

/// Fig. 16(b): SU-threshold sweep on Fragbench W4.
pub fn run_fig16b(scale: &Scale) {
    println!("\n== Fig 16b: morphing SU threshold on Fragbench W4 ==");
    let mut rep = Reporter::new(&["SU %", "time (ms)", "peak mem (MiB)"]);
    for su in [0.10, 0.20, 0.30, 0.50] {
        let cfg = NvConfig::log()
            .su_threshold(su)
            .trace(scale.tracing())
            .trace_events_per_thread(scale.trace_events());
        let alloc = create_custom(pool_mb(2048), cfg, 1 << 20);
        let r = fragbench::run(&alloc, fragbench::TABLE1[3], frag_params(scale));
        scale.emit(&format!("fig16b_su_threshold/su={:.0}", su * 100.0), &r.measurement);
        scale.finish(&*alloc);
        rep.row(&[
            &format!("{:.0}", su * 100.0),
            &format!("{:.1}", r.measurement.elapsed_ms()),
            &mib(r.peak_mapped),
        ]);
    }
    print!("{}", rep.render());
}
