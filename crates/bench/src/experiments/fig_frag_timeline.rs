//! Fragmentation over time (extension of Fig. 15): Fragbench W3 churn
//! with the heap-observatory timeline sampler, NVAlloc-LOG vs. two
//! baselines.
//!
//! The paper's Fig. 1b/15 report *endpoint* fragmentation (peak mapped
//! over live cap). This experiment plots the whole trajectory: how fast
//! each allocator's mapped footprint diverges from live data as the
//! size distribution shifts mid-run. The NVAlloc series carries two
//! sub-series — the external mapped/live poll every K operations (same
//! as the baselines, for an apples-to-apples factor curve) and the
//! in-allocator timeline samples (occupancy, external/internal
//! fragmentation, queue depths, windowed latency quantiles), which the
//! baselines cannot produce.
//!
//! Output is multi-series JSON-lines, one object per point, written to
//! `results/fig_frag_timeline.jsonl` (or the `--timeline <path>`
//! destination when given):
//!
//! * `{"series":"PMDK","workload":"W3","kind":"churn","ops":…,"ns":…,
//!   "mapped":…,"live":…,"factor":…}` — externally polled points;
//! * `{"series":"NVAlloc-LOG","workload":"W3","kind":"timeline",
//!   "sample":{…}}` — one embedded [`nvalloc::observe::TimelineSample`]
//!   per virtual-clock tick.
//!
//! The NVAlloc series is deterministic end to end: the churn is seeded
//! and single-threaded, the sampler ticks on the virtual clock, and the
//! config pins `decay_ms(u64::MAX)` to freeze the one wall-clock-driven
//! mechanism (extent decay), so its lines are byte-identical across
//! runs. The baselines keep their jemalloc-style 10 s decay window, so
//! their polled `mapped` can differ by an extent or two run to run —
//! the wobble is part of the behaviour being plotted.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::fragbench::{self, ChurnPoint};
use nvalloc_workloads::Reporter;

use crate::experiments::motivation::frag_params;
use crate::experiments::{mib, pool_mb};
use crate::Scale;

/// Timeline tick interval (virtual ns) when `--timeline-interval` wasn't
/// given: coarse enough that a default-scale W3 run fits [`RING`].
pub const DEFAULT_INTERVAL_NS: u64 = 300_000;

/// Timeline ring capacity for the NVAlloc series (samples beyond this
/// drop oldest; the summary table reports the drop count).
pub const RING: usize = 16_384;

fn churn_line(series: &str, w: &str, pt: &ChurnPoint) -> String {
    let factor = pt.mapped as f64 / pt.live.max(1) as f64;
    format!(
        "{{\"series\":\"{series}\",\"workload\":\"{w}\",\"kind\":\"churn\",\
         \"ops\":{},\"ns\":{},\"mapped\":{},\"live\":{},\"factor\":{factor:.4}}}",
        pt.ops, pt.ns, pt.mapped, pt.live,
    )
}

/// Fragmentation-over-time under Fragbench W3 churn.
pub fn run_frag_timeline(scale: &Scale) {
    let w = fragbench::TABLE1[2]; // W3: 90% delete + size shift, the churniest row
    let p = frag_params(scale);
    // ~256 external points per run regardless of scale (125 B is W3's
    // rough mean object size).
    let every = (p.total_bytes as u64 / 125 / 128).max(1_000);
    let interval = if scale.timeline_ns() > 0 { scale.timeline_ns() } else { DEFAULT_INTERVAL_NS };

    let out =
        scale.timeline.clone().unwrap_or_else(|| PathBuf::from("results/fig_frag_timeline.jsonl"));
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
        }
    }
    let mut f = std::fs::File::create(&out)
        .unwrap_or_else(|e| panic!("fig_frag_timeline {}: {e}", out.display()));

    println!(
        "\n== Frag timeline ({}, churn point every {every} ops, timeline tick {interval} ns) ==",
        w.name
    );
    let mut rep = Reporter::new(&[
        "series",
        "churn pts",
        "timeline pts",
        "dropped",
        "peak MiB",
        "final factor",
        "final ext frag",
    ]);

    // NVAlloc-LOG: external poll + in-allocator timeline.
    {
        let a = Arc::new(
            NvAllocator::create(
                pool_mb(2048),
                NvConfig::log()
                    .roots(1 << 20)
                    .timeline(interval)
                    .timeline_capacity(RING)
                    .decay_ms(u64::MAX)
                    .trace(scale.tracing())
                    .trace_events_per_thread(scale.trace_events())
                    .profiling(scale.profile_sample()),
            )
            .expect("create"),
        );
        let dyn_a: Arc<dyn PmAllocator> = a.clone();
        let mut churn = 0usize;
        let r = fragbench::run_sampled(&dyn_a, w, p, every, &mut |pt| {
            churn += 1;
            writeln!(f, "{}", churn_line("NVAlloc-LOG", w.name, &pt)).expect("write churn line");
        });
        scale.emit("fig_frag_timeline/nvalloc_log", &r.measurement);
        let samples = a.timeline_samples();
        for s in &samples {
            writeln!(
                f,
                "{{\"series\":\"NVAlloc-LOG\",\"workload\":\"{}\",\"kind\":\"timeline\",\"sample\":{}}}",
                w.name,
                s.to_json()
            )
            .expect("write timeline line");
        }
        let dropped = a.timeline_sampler().map_or(0, |o| o.dropped());
        let last = samples.last();
        rep.row(&[
            "NVAlloc-LOG",
            &churn.to_string(),
            &samples.len().to_string(),
            &dropped.to_string(),
            &mib(r.peak_mapped),
            &format!("{:.2}", r.overhead_factor(p.live_cap)),
            &last.map_or("-".into(), |s| format!("{:.3}", s.external_frag)),
        ]);
        // `finish` would overwrite the multi-series file at the
        // `--timeline` path, so only the profiled-shutdown tail runs
        // here. The W3 heap still holds its live cap, so the profile's
        // retained set names the fragbench site.
        scale.finish_profile(&*dyn_a);
    }

    // Baselines: external poll only (they have no sampler to ask).
    for which in [Which::Pmdk, Which::Makalu] {
        let a = which.create_with_roots(pool_mb(2048), 1 << 20);
        let mut churn = 0usize;
        let r = fragbench::run_sampled(&a, w, p, every, &mut |pt| {
            churn += 1;
            writeln!(f, "{}", churn_line(which.name(), w.name, &pt)).expect("write churn line");
        });
        scale.emit(&format!("fig_frag_timeline/{}", which.name()), &r.measurement);
        rep.row(&[
            which.name(),
            &churn.to_string(),
            "0",
            "0",
            &mib(r.peak_mapped),
            &format!("{:.2}", r.overhead_factor(p.live_cap)),
            "-",
        ]);
    }

    print!("{}", rep.render());
    println!("multi-series JSON written to {}", out.display());
}
