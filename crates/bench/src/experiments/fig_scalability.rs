//! Fig. 22 (extension): wall-clock free-path scalability.
//!
//! Every other experiment reports *modelled* time, which deliberately
//! hides host-side lock contention. This one sweeps thread counts over
//! the [`nvalloc_workloads::remote_mix`] workload and reports real
//! wall-clock throughput, which is exactly where the lock-free free fast
//! path, the per-arena remote-free queues, and the slab reservoirs show
//! up: with them, adding threads adds throughput; without them, every
//! free serialises on the arena mutex.
//!
//! Honours `--threads a,b,c`, `--ops N` (per-thread allocation count),
//! `--quick`/`--full`/`--factor`, and `--json`.

use nvalloc::NvConfig;
use nvalloc_workloads::allocators::create_custom;
use nvalloc_workloads::{remote_mix, Reporter};

use crate::experiments::{mops_cell, pool_sleep_mb};
use crate::Scale;

/// Per-arena slab reservoir size used by the sweep (batch carves and
/// parked retirees; see `NvConfig::slab_reservoir`).
pub const RESERVOIR: usize = 8;

/// Fraction of frees handed to the ring neighbour.
pub const REMOTE_FRAC: f64 = 0.4;

/// Fig. 22: remote-mix wall-clock throughput by thread count.
pub fn run_fig22(scale: &Scale) {
    let ops = scale.fixed_ops.unwrap_or_else(|| scale.ops(20_000, 1_000));
    println!(
        "\n== Fig 22 (wall-clock scalability, remote-mix, {:.0}% remote frees, {ops} allocs/thread) ==",
        REMOTE_FRAC * 100.0
    );
    let mut rep = Reporter::new(&[
        "threads",
        "wall Mops/s",
        "modelled Mops/s",
        "remote frees %",
        "free locks/op",
        "reservoir hit %",
    ]);
    for &t in scale.threads() {
        // One arena per thread (the paper binds arenas to cores), so a
        // handed-off free really is remote to the freeing thread's arena.
        let cfg = NvConfig::log().arenas(t).slab_reservoir(RESERVOIR);
        let alloc = create_custom(pool_sleep_mb(512), cfg, 1 << 18);
        let m = remote_mix::run(
            &alloc,
            remote_mix::Params { threads: t, ops, remote_frac: REMOTE_FRAC, seed: 0x22 },
        );
        scale.emit("fig22_scalability", &m);
        let frees = m.metrics.free_fast_local + m.metrics.free_remote + m.metrics.free_locks;
        let remote_pct = 100.0 * m.metrics.free_remote as f64 / frees.max(1) as f64;
        let locks_per_op = m.metrics.free_locks as f64 / frees.max(1) as f64;
        let reservoir_ops = m.metrics.reservoir_hits + m.metrics.reservoir_misses;
        let hit_pct = 100.0 * m.metrics.reservoir_hits as f64 / reservoir_ops.max(1) as f64;
        rep.row(&[
            &t.to_string(),
            &mops_cell(m.wall_mops()),
            &mops_cell(m.mops()),
            &format!("{remote_pct:.1}"),
            &format!("{locks_per_op:.4}"),
            &format!("{hit_pct:.1}"),
        ]);
    }
    print!("{}", rep.render());
}
