//! Fig. 22 (extension): wall-clock free-path scalability.
//!
//! Every other experiment reports *modelled* time, which deliberately
//! hides host-side lock contention. This one sweeps thread counts over
//! the [`nvalloc_workloads::remote_mix`] workload and reports real
//! wall-clock throughput, which is exactly where the lock-free free fast
//! path, the per-arena remote-free queues, the slab reservoirs, and the
//! sharded large allocator show up: with them, adding threads adds
//! throughput; without them, every free serialises on the arena mutex
//! and every extent op serialises on one large-allocator lock.
//!
//! Four series per thread count:
//! * `NVAlloc-LOG` — sharded large allocator (one shard per arena);
//! * `NVAlloc-LOG/1shard` — identical config with `large_shards(1)`, the
//!   pre-sharding behaviour, isolating the sharding win;
//! * `PMDK` and `Makalu` — baseline allocators for context.
//!
//! With `--service`, a fifth series `NVAlloc-LOG/svc` runs the sharded
//! config with the allocator service on (`NvConfig::service(true)`):
//! slab retires and reservoir carves are offloaded to the per-pool
//! service thread (the pool is wall-clock here, so the dedicated thread
//! really runs), whose epoch tick also drains idle arenas' remote
//! queues. The p99/p999 columns are the tail-latency payoff the CI gate
//! compares against the service-off arm.
//!
//! Honours `--threads a,b,c`, `--ops N` (per-thread allocation count),
//! `--quick`/`--full`/`--factor`, `--service`, and `--json`.

use nvalloc::telemetry::OpKind;
use nvalloc::NvConfig;
use nvalloc_workloads::allocators::{create_custom, Which};
use nvalloc_workloads::{remote_mix, BenchMeasurement, Reporter};

use crate::experiments::{mops_cell, pool_sleep_mb};
use crate::Scale;

/// Per-arena slab reservoir size used by the sweep (batch carves and
/// parked retirees; see `NvConfig::slab_reservoir`).
pub const RESERVOIR: usize = 8;

/// Fraction of frees handed to the ring neighbour.
pub const REMOTE_FRAC: f64 = 0.4;

/// Fraction of allocations drawn from the large size classes, so the
/// sweep also measures large-shard lock contention (cross-shard frees
/// included: a handed-off large block is freed by a different thread).
pub const LARGE_FRAC: f64 = 0.05;

fn run_series(
    scale: &Scale,
    rep: &mut Reporter,
    bench: &str,
    label: Option<&str>,
    threads: usize,
    ops: usize,
    alloc: &std::sync::Arc<dyn nvalloc::api::PmAllocator>,
) -> BenchMeasurement {
    let m = remote_mix::run(
        alloc,
        remote_mix::Params {
            threads,
            ops,
            remote_frac: REMOTE_FRAC,
            large_frac: LARGE_FRAC,
            seed: 0x22,
        },
    );
    scale.emit(bench, &m);
    scale.finish(&**alloc);
    let frees = m.metrics.free_fast_local + m.metrics.free_remote + m.metrics.free_locks;
    let remote_pct = 100.0 * m.metrics.free_remote as f64 / frees.max(1) as f64;
    let locks_per_op = m.metrics.free_locks as f64 / m.ops.max(1) as f64;
    let large_locks_per_op = m.metrics.large_lock_acquires as f64 / m.ops.max(1) as f64;
    let large_cont_per_op = m.metrics.large_lock_contended as f64 / m.ops.max(1) as f64;
    let reservoir_ops = m.metrics.reservoir_hits + m.metrics.reservoir_misses;
    let hit_pct = 100.0 * m.metrics.reservoir_hits as f64 / reservoir_ops.max(1) as f64;
    // Modelled small-malloc tail latency, from the same log2 histograms
    // the JSON `latency` object is reduced from (baselines have no
    // internal histograms and report 0).
    let alloc_hist = m.metrics.hists.of(OpKind::MallocSmall);
    rep.row(&[
        label.unwrap_or(&m.allocator),
        &threads.to_string(),
        &mops_cell(m.wall_mops()),
        &mops_cell(m.mops()),
        &format!("{remote_pct:.1}"),
        &format!("{locks_per_op:.4}"),
        &format!("{large_locks_per_op:.4}"),
        &format!("{large_cont_per_op:.4}"),
        &format!("{:.0}", m.lock_wait_ns_per_op()),
        &format!("{hit_pct:.1}"),
        &alloc_hist.quantile(0.50).to_string(),
        &alloc_hist.quantile(0.99).to_string(),
        &alloc_hist.quantile(0.999).to_string(),
    ]);
    m
}

/// Fig. 22: remote-mix wall-clock throughput by thread count.
pub fn run_fig22(scale: &Scale) {
    let ops = scale.fixed_ops.unwrap_or_else(|| scale.ops(20_000, 1_000));
    println!(
        "\n== Fig 22 (wall-clock scalability, remote-mix, {:.0}% remote frees, {:.0}% large, {ops} allocs/thread) ==",
        REMOTE_FRAC * 100.0,
        LARGE_FRAC * 100.0,
    );
    let mut rep = Reporter::new(&[
        "allocator",
        "threads",
        "wall Mops/s",
        "modelled Mops/s",
        "remote %",
        "free locks/op",
        "large locks/op",
        "large cont/op",
        "lock wait ns/op",
        "rsv hit %",
        "alloc p50 ns",
        "alloc p99 ns",
        "alloc p999 ns",
    ]);
    for &t in scale.threads() {
        // One arena per thread (the paper binds arenas to cores), so a
        // handed-off free really is remote to the freeing thread's arena;
        // the large allocator defaults to one shard per arena.
        let sharded = create_custom(
            pool_sleep_mb(512),
            NvConfig::log()
                .arenas(t)
                .slab_reservoir(RESERVOIR)
                .trace(scale.tracing())
                .trace_events_per_thread(scale.trace_events())
                .timeline(scale.timeline_ns())
                .profiling(scale.profile_sample()),
            1 << 18,
        );
        run_series(scale, &mut rep, "fig22_scalability", None, t, ops, &sharded);

        if scale.service {
            // Same config + the allocator service: the only delta vs the
            // series above is *who* executes the slow paths.
            let svc = create_custom(
                pool_sleep_mb(512),
                NvConfig::log()
                    .arenas(t)
                    .slab_reservoir(RESERVOIR)
                    .service(true)
                    .trace(scale.tracing())
                    .trace_events_per_thread(scale.trace_events())
                    .timeline(scale.timeline_ns())
                    .profiling(scale.profile_sample()),
                1 << 18,
            );
            run_series(
                scale,
                &mut rep,
                "fig22_scalability_svc",
                Some("NVAlloc-LOG/svc"),
                t,
                ops,
                &svc,
            );
        }

        let single = create_custom(
            pool_sleep_mb(512),
            NvConfig::log()
                .arenas(t)
                .slab_reservoir(RESERVOIR)
                .large_shards(1)
                .trace(scale.tracing())
                .trace_events_per_thread(scale.trace_events()),
            1 << 18,
        );
        run_series(
            scale,
            &mut rep,
            "fig22_scalability_1shard",
            Some("NVAlloc-LOG/1shard"),
            t,
            ops,
            &single,
        );

        for (which, bench) in
            [(Which::Pmdk, "fig22_scalability_pmdk"), (Which::Makalu, "fig22_scalability_makalu")]
        {
            let base = which.create_with_roots(pool_sleep_mb(512), 1 << 18);
            run_series(scale, &mut rep, bench, None, t, ops, &base);
        }
    }
    print!("{}", rep.render());
}
