//! Fig. 13: heap space consumption vs. thread count under Threadtest and
//! DBMStest.

use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{dbmstest, threadtest, Reporter};

use crate::experiments::{mib, pool_mb_san};
use crate::Scale;

const SET: [Which; 5] =
    [Which::Pmdk, Which::NvmMalloc, Which::Makalu, Which::Ralloc, Which::NvallocLog];

/// Fig. 13: peak mapped bytes by thread count.
pub fn run_fig13(scale: &Scale) {
    for bench in ["Threadtest", "DBMStest"] {
        println!("\n== Fig 13: space consumption, {bench} (peak MiB) ==");
        let mut headers = vec!["threads".to_string()];
        headers.extend(SET.iter().map(|w| w.name().to_string()));
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Reporter::new(&hrefs);
        for &t in scale.threads() {
            let mut row = vec![t.to_string()];
            for &w in &SET {
                let alloc = w.create_traced(
                    pool_mb_san(512 + t * 48, scale.pmsan && w.is_nvalloc()),
                    1 << 19,
                    scale.tracing(),
                    scale.trace_events(),
                );
                let m = match bench {
                    "Threadtest" => {
                        let mut p = threadtest::Params::quick(t);
                        p.iterations = scale.ops(p.iterations, 2).min(8);
                        p.objects = p.objects.min((1 << 19) / 8 / t.max(1)).max(16);
                        threadtest::run(&alloc, p)
                    }
                    _ => {
                        let mut p = dbmstest::Params::quick(t);
                        p.iterations = scale.ops(p.iterations, 2).min(6);
                        dbmstest::run(&alloc, p)
                    }
                };
                scale.emit(&format!("fig13_space/{bench}"), &m);
                scale.finish(&*alloc);
                row.push(mib(m.peak_mapped));
            }
            let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            rep.row(&rrefs);
        }
        print!("{}", rep.render());
    }
}
