//! Figs. 12, 17, 21: large-allocation throughput (Larson-large, DBMStest),
//! booklog GC overhead, and the eADR variant.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::NvConfig;
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{dbmstest, larson, BenchMeasurement, Reporter};

use crate::experiments::{mops_cell, pool_eadr_mb_san, pool_mb_san};
use crate::Scale;

fn run_bench(
    alloc: &Arc<dyn PmAllocator>,
    bench: &str,
    threads: usize,
    scale: &Scale,
) -> BenchMeasurement {
    match bench {
        "Larson-large" => {
            let mut p = larson::Params::large(threads);
            p.rounds = scale.ops(p.rounds, 2);
            larson::run(alloc, p)
        }
        "DBMStest" => {
            let mut p = dbmstest::Params::quick(threads);
            p.iterations = scale.ops(p.iterations, 2);
            dbmstest::run(alloc, p)
        }
        other => unreachable!("unknown bench {other}"),
    }
}

fn pool_for(threads: usize, eadr: bool, pmsan: bool) -> Arc<nvalloc_pmem::PmemPool> {
    // Large-object churn: size the pool by thread count.
    let mb = (512 + threads * 48).min(4096);
    if eadr {
        pool_eadr_mb_san(mb, pmsan)
    } else {
        pool_mb_san(mb, pmsan)
    }
}

fn sweep(title: &str, slug: &str, scale: &Scale, eadr: bool) {
    for bench in ["Larson-large", "DBMStest"] {
        println!("\n== {title}: {bench} (Mops/s by thread count) ==");
        let mut headers = vec!["threads".to_string()];
        headers.extend(Which::LARGE.iter().map(|w| w.name().to_string()));
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Reporter::new(&hrefs);
        for &t in scale.threads() {
            let mut row = vec![t.to_string()];
            for w in Which::LARGE {
                let alloc = w.create_traced(
                    pool_for(t, eadr, scale.pmsan && w.is_nvalloc()),
                    1 << 19,
                    scale.tracing(),
                    scale.trace_events(),
                );
                let m = run_bench(&alloc, bench, t, scale);
                scale.emit(&format!("{slug}/{bench}"), &m);
                scale.finish(&*alloc);
                row.push(mops_cell(m.mops()));
            }
            let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            rep.row(&rrefs);
        }
        print!("{}", rep.render());
    }
}

/// Fig. 12: large allocations, ADR.
pub fn run_fig12(scale: &Scale) {
    sweep("Fig 12 (large, ADR)", "fig12_large", scale, false);
}

/// Fig. 21: large allocations, emulated eADR.
pub fn run_fig21(scale: &Scale) {
    sweep("Fig 21 (large, eADR)", "fig21_large_eadr", scale, true);
}

/// Fig. 17: booklog GC on/off. The paper's `Usage_pmem = 0.2 %` applies
/// to multi-GB runs; the threshold here is scaled down with the workload
/// so slow GC actually triggers several times per run.
pub fn run_fig17(scale: &Scale) {
    println!("\n== Fig 17: bookkeeping-log GC overhead (Kops/s) ==");
    let mut rep = Reporter::new(&["bench", "w/o GC", "with GC", "slowdown %", "slow GCs"]);
    for bench in ["Larson-large", "DBMStest"] {
        let measure = |gc: bool| {
            let cfg = NvConfig::log().booklog_gc(gc).usage_pmem(0.00001).roots(1 << 19);
            let nv = std::sync::Arc::new(
                nvalloc::NvAllocator::create(pool_for(8, false, scale.pmsan), cfg).expect("create"),
            );
            let dyn_a: Arc<dyn PmAllocator> = nv.clone();
            let m = run_bench(&dyn_a, bench, 8, scale);
            let gcs = nv.booklog_stats().map_or(0, |s| s.slow_gc_runs);
            (m, gcs)
        };
        let (without, _) = measure(false);
        let (with, gcs) = measure(true);
        scale.emit(&format!("fig17_booklog_gc/{bench}/no_gc"), &without);
        scale.emit(&format!("fig17_booklog_gc/{bench}/gc"), &with);
        let slowdown = 100.0 * (1.0 - with.mops() / without.mops());
        rep.row(&[
            bench,
            &format!("{:.1}", without.mops() * 1000.0),
            &format!("{:.1}", with.mops() * 1000.0),
            &format!("{slowdown:.1}"),
            &gcs.to_string(),
        ]);
    }
    print!("{}", rep.render());
}
