//! Fig. 14: FPTree throughput under a 50/50 insert/delete workload, for
//! both consistency classes.

use std::sync::Arc;

use nvalloc_fptree::FpTree;
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{BenchMeasurement, Reporter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::experiments::{mops_cell, pool_mb};
use crate::Scale;

fn run_tree(which: Which, threads: usize, warm: usize, ops: usize) -> BenchMeasurement {
    let pool = pool_mb(1024 + threads * 16);
    let alloc = which.create_with_roots(Arc::clone(&pool), 64);
    let tree = FpTree::new(Arc::clone(&alloc), 128).expect("tree");
    // Warm up with `warm` keys.
    {
        let mut s = tree.session();
        for k in 0..warm as u64 {
            s.insert(k, k).expect("warm insert");
        }
    }
    pool.stats().reset();
    let m0 = alloc.metrics();
    let virtuals: Vec<u64> = std::thread::scope(|sc| {
        (0..threads)
            .map(|k| {
                let tree = tree.clone();
                sc.spawn(move || {
                    let mut s = tree.session();
                    s.thread_mut().pm_mut().reset_clock();
                    let mut rng = SmallRng::seed_from_u64(0xF9 ^ (k as u64) << 32);
                    let per = ops / threads;
                    for _ in 0..per {
                        let key = rng.gen_range(0..(warm as u64 * 2).max(16));
                        if rng.gen_bool(0.5) {
                            s.insert(key, key).expect("insert");
                        } else {
                            let _ = s.remove(key).expect("remove");
                        }
                    }
                    s.thread().pm().virtual_ns()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let per = (ops / threads) as u64;
    let elapsed =
        virtuals.into_iter().max().unwrap_or(0) + per * nvalloc_workloads::harness::CPU_NS_PER_OP;
    BenchMeasurement {
        allocator: alloc.name(),
        threads,
        ops: ops as u64,
        elapsed_ns: elapsed.max(1),
        wall_ns: 0,
        stats: pool.stats().snapshot(),
        peak_mapped: alloc.peak_mapped_bytes(),
        mapped: alloc.heap_mapped_bytes(),
        metrics: alloc.metrics().since(&m0),
    }
}

/// Fig. 14: throughput by thread count for both consistency classes.
pub fn run_fig14(scale: &Scale) {
    let warm = scale.ops(20_000, 2_000);
    let total_ops = scale.ops(20_000, 2_000);
    for (title, set) in
        [("strongly consistent", &Which::STRONG[..]), ("weakly consistent", &Which::WEAK[..])]
    {
        println!("\n== Fig 14: FPTree 50/50 insert/delete, {title} (Mops/s) ==");
        let mut headers = vec!["threads".to_string()];
        headers.extend(set.iter().map(|w| w.name().to_string()));
        let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Reporter::new(&hrefs);
        for &t in scale.threads() {
            let mut row = vec![t.to_string()];
            for &w in set {
                let m = run_tree(w, t, warm, total_ops);
                scale.emit("fig14_fptree", &m);
                row.push(mops_cell(m.mops()));
            }
            let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
            rep.row(&rrefs);
        }
        print!("{}", rep.render());
    }
}
