//! Fig. 11: execution-time breakdown of Base / +Interleaved / +Log /
//! NVAlloc-LOG into FlushMeta, FlushWAL, FlushBook, and Other.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::NvConfig;
use nvalloc_pmem::FlushKind;
use nvalloc_workloads::allocators::create_custom;
use nvalloc_workloads::{dbmstest, larson, threadtest, BenchMeasurement, Reporter};

use crate::experiments::pool_mb;
use crate::Scale;

fn configs() -> Vec<(&'static str, NvConfig)> {
    vec![
        ("Base", NvConfig::base()),
        ("+Interleaved", NvConfig::base_plus_interleaved()),
        ("+Log", NvConfig::base_plus_log()),
        ("NVAlloc-LOG", NvConfig::log().morphing(false)),
    ]
}

fn measure(alloc: &Arc<dyn PmAllocator>, bench: &str, scale: &Scale) -> BenchMeasurement {
    match bench {
        "Threadtest" => {
            let mut p = threadtest::Params::quick(8);
            p.iterations = scale.ops(p.iterations, 2);
            threadtest::run(alloc, p)
        }
        "Larson-small" => {
            let mut p = larson::Params::small(8);
            p.rounds = scale.ops(p.rounds, 2);
            larson::run(alloc, p)
        }
        _ => {
            let mut p = dbmstest::Params::quick(8);
            p.iterations = scale.ops(p.iterations, 2);
            dbmstest::run(alloc, p)
        }
    }
}

/// Fig. 11: per-config breakdown at 8 threads.
pub fn run_fig11(scale: &Scale) {
    for bench in ["Threadtest", "Larson-small", "DBMS-test"] {
        println!("\n== Fig 11: breakdown on {bench} (8 threads; % of modelled time) ==");
        let mut rep = Reporter::new(&[
            "config",
            "FlushMeta %",
            "FlushWAL %",
            "FlushBook %",
            "Other %",
            "total (ms)",
        ]);
        for (name, cfg) in configs() {
            let alloc = create_custom(
                pool_mb(1024),
                cfg.trace(scale.tracing()).trace_events_per_thread(scale.trace_events()),
                1 << 19,
            );
            let mut m = measure(&alloc, bench, scale);
            m.allocator = name.to_string();
            scale.emit(&format!("fig11_breakdown/{bench}"), &m);
            scale.finish(&*alloc);
            // Shares of the total cross-thread work: modelled PM time by
            // attribution kind plus the CPU (search/list/lock) component.
            let meta = m.stats.ns_of(FlushKind::Meta) as f64;
            let wal = m.stats.ns_of(FlushKind::Wal) as f64;
            let book = m.stats.ns_of(FlushKind::BookLog) as f64;
            let data = m.stats.ns_of(FlushKind::Data) as f64;
            let cpu = (m.ops * nvalloc_workloads::harness::CPU_NS_PER_OP) as f64;
            let total = (meta + wal + book + data + cpu).max(1.0);
            rep.row(&[
                name,
                &format!("{:.1}", 100.0 * meta / total),
                &format!("{:.1}", 100.0 * wal / total),
                &format!("{:.1}", 100.0 * book / total),
                &format!("{:.1}", 100.0 * (data + cpu) / total),
                &format!("{:.2}", m.elapsed_ms()),
            ]);
        }
        print!("{}", rep.render());
    }
}
