//! Fig. 18: recovery time after building a linked list of small nodes,
//! for every open-source allocator the paper tables.

use std::sync::Arc;
use std::time::Instant;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_baselines::{Baseline, BaselineKind};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::{linkedlist, BenchMeasurement, Reporter};

use crate::Scale;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(mb << 20)
            .latency_mode(LatencyMode::Virtual)
            .crash_tracking(true),
    )
}

fn ms(ns: u128) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Package one recovery run as a measurement for `--json` output. The
/// recovered allocator's metrics carry the WAL-replay count and the
/// modelled recovery-latency histogram (all-zero for baselines).
fn recovery_measurement(
    name: &str,
    nodes: usize,
    elapsed_ns: u128,
    img: &Arc<PmemPool>,
    alloc: &Arc<dyn PmAllocator>,
) -> BenchMeasurement {
    BenchMeasurement {
        allocator: name.to_string(),
        threads: 1,
        ops: nodes as u64,
        elapsed_ns: elapsed_ns as u64,
        wall_ns: 0,
        stats: img.stats().snapshot(),
        peak_mapped: alloc.peak_mapped_bytes(),
        mapped: alloc.heap_mapped_bytes(),
        metrics: alloc.metrics(),
    }
}

/// Fig. 18: build the list, exit cleanly... no — crash, then measure
/// recovery (wall + modelled PM time) with a single thread.
pub fn run_fig18(scale: &Scale) {
    let nodes = scale.ops(200_000, 10_000);
    let mb = (nodes / 3000 + 192).next_power_of_two().max(256);
    println!("\n== Fig 18: recovery time after a {nodes}-node linked list ==");
    let mut rep = Reporter::new(&["allocator", "recovery (ms)", "notes"]);

    // Baselines.
    for (kind, note) in [
        (BaselineKind::NvmMalloc, "defers reconstruction"),
        (BaselineKind::Pmdk, "WAL + header rescan"),
        (BaselineKind::Ralloc, "GC, filtered scan"),
        (BaselineKind::Makalu, "full conservative GC"),
    ] {
        let pool = crash_pool(mb);
        let alloc: Arc<dyn PmAllocator> =
            Arc::new(Baseline::create(Arc::clone(&pool), kind).expect("create"));
        linkedlist::build(&alloc, nodes, 0x18);
        alloc.exit();
        let img = PmemPool::from_crash_image(pool.clean_shutdown_image());
        let start = Instant::now();
        let (recovered, _) = Baseline::recover(Arc::clone(&img), kind).expect("recover");
        let elapsed = start.elapsed().as_nanos();
        let alloc2: Arc<dyn PmAllocator> = Arc::new(recovered);
        assert_eq!(linkedlist::count(&alloc2), nodes, "{kind:?} lost nodes");
        let name = format!("{kind:?}");
        scale.emit("fig18_recovery", &recovery_measurement(&name, nodes, elapsed, &img, &alloc2));
        rep.row(&[&name, &ms(elapsed), note]);
    }

    // NVAlloc variants.
    for (cfg, name, note) in [
        (NvConfig::log(), "NVAlloc-LOG", "WAL + booklog scan"),
        (NvConfig::gc(), "NVAlloc-GC", "conservative GC"),
    ] {
        let pool = crash_pool(mb);
        let alloc: Arc<dyn PmAllocator> =
            Arc::new(NvAllocator::create(Arc::clone(&pool), cfg.clone()).expect("create"));
        linkedlist::build(&alloc, nodes, 0x18);
        // Crash (not clean exit) so the failure paths run, as in the paper.
        let img = PmemPool::from_crash_image(pool.crash());
        let start = Instant::now();
        let (recovered, _) = NvAllocator::recover(Arc::clone(&img), cfg).expect("recover");
        let elapsed = start.elapsed().as_nanos();
        let alloc2: Arc<dyn PmAllocator> = Arc::new(recovered);
        assert_eq!(linkedlist::count(&alloc2), nodes, "{name} lost nodes");
        scale.emit("fig18_recovery", &recovery_measurement(name, nodes, elapsed, &img, &alloc2));
        rep.row(&[name, &ms(elapsed), note]);
    }
    print!("{}", rep.render());
}
