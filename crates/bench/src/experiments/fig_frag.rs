//! Fig. 15: Fragbench over W1–W4 — space consumption with/without slab
//! morphing, slab-utilisation breakdown, and performance for both
//! consistency classes.

use nvalloc::{NvAllocator, NvConfig};
use nvalloc_workloads::allocators::{create_custom, Which};
use nvalloc_workloads::{fragbench, Reporter};

use crate::experiments::motivation::frag_params;
use crate::experiments::{mib, pool_mb};
use crate::Scale;

/// Fig. 15(a): peak space, Makalu vs NVAlloc-LOG with and without SM.
pub fn run_space(scale: &Scale) {
    println!("\n== Fig 15a: Fragbench peak space (MiB) ==");
    let mut rep = Reporter::new(&["workload", "Makalu", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"]);
    for w in fragbench::TABLE1 {
        let makalu = {
            let a = Which::Makalu.create_with_roots(pool_mb(2048), 1 << 20);
            let r = fragbench::run(&a, w, frag_params(scale));
            scale.emit(&format!("fig15a_space/{}", w.name), &r.measurement);
            r.peak_mapped
        };
        let wo_sm = {
            let a = create_custom(pool_mb(2048), NvConfig::log().morphing(false), 1 << 20);
            let r = fragbench::run(&a, w, frag_params(scale));
            scale.emit(&format!("fig15a_space/{}/no_sm", w.name), &r.measurement);
            r.peak_mapped
        };
        let with_sm = {
            // The morphing run is the one worth tracing (`--trace` shows
            // the four-step morph protocol; see EXPERIMENTS.md).
            let a = create_custom(
                pool_mb(2048),
                NvConfig::log()
                    .trace(scale.tracing())
                    .trace_events_per_thread(scale.trace_events()),
                1 << 20,
            );
            let r = fragbench::run(&a, w, frag_params(scale));
            scale.emit(&format!("fig15a_space/{}/sm", w.name), &r.measurement);
            scale.finish(&*a);
            r.peak_mapped
        };
        rep.row(&[w.name, &mib(makalu), &mib(wo_sm), &mib(with_sm)]);
    }
    print!("{}", rep.render());
}

/// Fig. 15(b): slab-utilisation breakdown with vs. without morphing.
pub fn run_breakdown(scale: &Scale) {
    println!("\n== Fig 15b: slab count by occupancy bin (0-30% / 30-70% / 70-100%) ==");
    let mut rep = Reporter::new(&[
        "workload",
        "w/o SM 0-30",
        "w/o SM 30-70",
        "w/o SM 70-100",
        "SM 0-30",
        "SM 30-70",
        "SM 70-100",
    ]);
    for w in fragbench::TABLE1 {
        let util = |morph: bool| {
            let pool = pool_mb(2048);
            let a = std::sync::Arc::new(
                NvAllocator::create(pool, NvConfig::log().morphing(morph).roots(1 << 20))
                    .expect("create"),
            );
            let dyn_a: std::sync::Arc<dyn nvalloc::api::PmAllocator> = a.clone();
            fragbench::run(&dyn_a, w, frag_params(scale));
            a.slab_utilization(&[0.3, 0.7]).counts
        };
        let wo = util(false);
        let with = util(true);
        rep.row(&[
            w.name,
            &wo[0].to_string(),
            &wo[1].to_string(),
            &wo[2].to_string(),
            &with[0].to_string(),
            &with[1].to_string(),
            &with[2].to_string(),
        ]);
    }
    print!("{}", rep.render());
}

/// Fig. 15(c)/(d): Fragbench execution time for both consistency classes.
pub fn run_perf(scale: &Scale) {
    println!("\n== Fig 15c: Fragbench time, strongly consistent (ms) ==");
    let mut rep =
        Reporter::new(&["workload", "PMDK", "nvm_malloc", "NVAlloc-LOG w/o SM", "NVAlloc-LOG"]);
    for w in fragbench::TABLE1 {
        let t = |which: Option<Which>, morph: bool| {
            let a = match which {
                Some(wh) => wh.create_with_roots(pool_mb(2048), 1 << 20),
                None => create_custom(pool_mb(2048), NvConfig::log().morphing(morph), 1 << 20),
            };
            let r = fragbench::run(&a, w, frag_params(scale));
            let sm = if morph { "sm" } else { "no_sm" };
            scale.emit(&format!("fig15c_perf_strong/{}/{sm}", w.name), &r.measurement);
            r.measurement.elapsed_ms()
        };
        rep.row(&[
            w.name,
            &format!("{:.1}", t(Some(Which::Pmdk), true)),
            &format!("{:.1}", t(Some(Which::NvmMalloc), true)),
            &format!("{:.1}", t(None, false)),
            &format!("{:.1}", t(None, true)),
        ]);
    }
    print!("{}", rep.render());

    println!("\n== Fig 15d: Fragbench time, weakly consistent (ms) ==");
    let mut rep =
        Reporter::new(&["workload", "Makalu", "Ralloc", "NVAlloc-GC w/o SM", "NVAlloc-GC"]);
    for w in fragbench::TABLE1 {
        let t = |which: Option<Which>, morph: bool| {
            let a = match which {
                Some(wh) => wh.create_with_roots(pool_mb(2048), 1 << 20),
                None => create_custom(pool_mb(2048), NvConfig::gc().morphing(morph), 1 << 20),
            };
            let r = fragbench::run(&a, w, frag_params(scale));
            let sm = if morph { "sm" } else { "no_sm" };
            scale.emit(&format!("fig15d_perf_weak/{}/{sm}", w.name), &r.measurement);
            r.measurement.elapsed_ms()
        };
        rep.row(&[
            w.name,
            &format!("{:.1}", t(Some(Which::Makalu), true)),
            &format!("{:.1}", t(Some(Which::Ralloc), true)),
            &format!("{:.1}", t(None, false)),
            &format!("{:.1}", t(None, true)),
        ]);
    }
    print!("{}", rep.render());
}

/// All of Fig. 15.
pub fn run_fig15(scale: &Scale) {
    run_space(scale);
    run_breakdown(scale);
    run_perf(scale);
}
