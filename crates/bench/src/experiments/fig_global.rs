//! `fig_global`: throughput of the `GlobalAlloc`/C-ABI front end
//! (`nv_malloc`/`nv_free` over the slot directory) against the system
//! allocator on the same random churn trace. The paper's figures compare
//! PM allocators through their native slot APIs; this experiment prices
//! the *compatibility* layer — `Layout` handling, the persistent slot
//! directory, and its mutex — so CI can hold the shim within a fixed
//! factor of a DRAM malloc. The system arm allocates through
//! `Vec::with_capacity` (the safe route to the global allocator), the
//! shim arm through the C entry points on a latency-model-off pool, so
//! the ratio isolates front-end bookkeeping rather than modelled PM
//! stalls.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use nvalloc::api::PmAllocator;
use nvalloc::global::{self, nv_free, nv_malloc};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::{BenchMeasurement, Reporter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::experiments::mops_cell;
use crate::Scale;

const SLOTS: usize = 1024;
const DEFAULT_OPS: usize = 200_000;

fn size_for(rng: &mut SmallRng) -> usize {
    if rng.gen_bool(0.05) {
        rng.gen_range(4096..32 << 10) // occasional large-path object
    } else {
        rng.gen_range(16..2048)
    }
}

/// One thread's churn through the shim: a slot array where each op frees
/// the slot if occupied, else mallocs into it.
fn churn_shim(tid: usize, ops: usize) {
    let mut rng = SmallRng::seed_from_u64(0x61_0BA1 + tid as u64);
    let mut slots = vec![0usize; SLOTS];
    for _ in 0..ops {
        let i = rng.gen_range(0..SLOTS);
        if slots[i] != 0 {
            nv_free(slots[i] as *mut _);
            slots[i] = 0;
        } else {
            let p = nv_malloc(size_for(&mut rng));
            assert!(!p.is_null(), "shim oom");
            slots[i] = black_box(p) as usize;
        }
    }
    for s in slots {
        if s != 0 {
            nv_free(s as *mut _);
        }
    }
}

/// The same trace through the process allocator, via `Vec::with_capacity`
/// (exact-capacity request, freed on drop).
fn churn_system(tid: usize, ops: usize) {
    let mut rng = SmallRng::seed_from_u64(0x61_0BA1 + tid as u64);
    let mut slots: Vec<Option<Vec<u8>>> = (0..SLOTS).map(|_| None).collect();
    for _ in 0..ops {
        let i = rng.gen_range(0..SLOTS);
        if slots[i].is_some() {
            slots[i] = None;
        } else {
            let v = Vec::<u8>::with_capacity(size_for(&mut rng));
            black_box(v.as_ptr());
            slots[i] = Some(v);
        }
    }
}

fn measure(name: &str, threads: usize, ops: usize, shim: bool) -> BenchMeasurement {
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            s.spawn(move || if shim { churn_shim(tid, ops) } else { churn_system(tid, ops) });
        }
    });
    let wall = start.elapsed().as_nanos() as u64;
    let (stats, mapped) = if shim {
        global::with_allocator(|a| (a.pool().stats().snapshot(), a.heap_mapped_bytes()))
            .expect("front end initialized")
    } else {
        (Default::default(), 0)
    };
    BenchMeasurement {
        allocator: name.to_string(),
        threads,
        ops: (ops * threads) as u64,
        // No virtual-latency model in either arm: modelled and wall time
        // coincide, so `mops` and `wall_mops` report the same number.
        elapsed_ns: wall,
        wall_ns: wall,
        stats,
        peak_mapped: mapped,
        mapped,
        metrics: Default::default(),
    }
}

/// Run the shim-vs-system churn sweep and print the ratio table.
pub fn run(scale: &Scale) {
    let ops = scale.fixed_ops.unwrap_or_else(|| scale.ops(DEFAULT_OPS, 1000));
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(768 << 20).latency_mode(LatencyMode::Off));
    global::init(Arc::clone(&pool), NvConfig::log()).expect("global front-end init");

    println!("\n== fig_global: C-shim front end vs system allocator ({ops} ops/thread) ==");
    let mut rep = Reporter::new(&["threads", "NVAlloc-shim", "System", "shim/system"]);
    for &t in scale.threads() {
        let shim = measure("NVAlloc-shim", t, ops, true);
        let sys = measure("System", t, ops, false);
        scale.emit("fig_global_shim", &shim);
        scale.emit("fig_global_system", &sys);
        let ratio = shim.wall_mops() / sys.wall_mops().max(1e-9);
        let cells = [
            t.to_string(),
            mops_cell(shim.wall_mops()),
            mops_cell(sys.wall_mops()),
            format!("{ratio:.3}"),
        ];
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        rep.row(&refs);
    }
    print!("{}", rep.render());

    // The trace frees everything it allocated; anything left live is the
    // directory itself.
    let live = global::with_allocator(|a| {
        a.quiesce();
        a.live_bytes()
    })
    .expect("front end initialized");
    assert!(live <= 64 << 10, "shim churn leaked {live} bytes");
    global::shutdown().expect("shutdown");
}
