//! §3 motivation experiments: Fig. 1(a) reflush ratios, Fig. 1(b) peak
//! memory under Fragbench, Fig. 2 metadata write-address scatter, and the
//! §3.1 reflush-distance latency table.

use nvalloc_pmem::{FlushKind, LatencyMode, ModelParams, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{dbmstest, fragbench, larson, prodcon, shbench, threadtest, Reporter};

use crate::experiments::{mib, pool_mb};
use crate::Scale;

/// Fig. 1(a): share of allocator flushes that are cache-line reflushes,
/// for the WAL-based allocators on the four small benchmarks.
pub fn run_fig01a(scale: &Scale) {
    println!("\n== Fig 1a: cache-line reflush share of allocator flushes (%) ==");
    let set = [Which::Pmdk, Which::NvmMalloc, Which::Pallocator];
    let mut headers = vec!["bench".to_string()];
    for w in set {
        headers.push(format!("{} reflush", w.name()));
        headers.push(format!("{} flush", w.name()));
    }
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Reporter::new(&hrefs);
    for bench in ["Threadtest", "Prod-con", "Shbench", "Larson"] {
        let mut row = vec![bench.to_string()];
        for w in set {
            let alloc = w.create_with_roots(pool_mb(512), 1 << 19);
            let m = match bench {
                "Threadtest" => {
                    let mut p = threadtest::Params::quick(8);
                    p.iterations = scale.ops(p.iterations, 2);
                    threadtest::run(&alloc, p)
                }
                "Prod-con" => {
                    let mut p = prodcon::Params::quick(8);
                    p.objects = scale.ops(p.objects, 100);
                    prodcon::run(&alloc, p)
                }
                "Shbench" => {
                    let mut p = shbench::Params::quick(8);
                    p.iterations = scale.ops(p.iterations, 200);
                    shbench::run(&alloc, p)
                }
                _ => {
                    let mut p = larson::Params::small(8);
                    p.rounds = scale.ops(p.rounds, 2);
                    larson::run(&alloc, p)
                }
            };
            scale.emit(&format!("fig01a_reflush/{bench}"), &m);
            let pct = m.stats.allocator_reflush_pct();
            row.push(format!("{pct:.1}"));
            row.push(format!("{:.1}", 100.0 - pct));
        }
        let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
        rep.row(&rrefs);
    }
    print!("{}", rep.render());
}

/// Fig. 1(b): peak memory consumption of the baselines under Fragbench
/// W1–W4 (static slab segregation).
pub fn run_fig01b(scale: &Scale) {
    println!("\n== Fig 1b: peak memory under Fragbench (MiB; live cap = {}) ==", {
        let p = frag_params(scale);
        mib(p.live_cap)
    });
    let set = [Which::Pmdk, Which::NvmMalloc, Which::Pallocator, Which::Makalu, Which::Ralloc];
    let mut headers = vec!["workload".to_string()];
    headers.extend(set.iter().map(|w| w.name().to_string()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Reporter::new(&hrefs);
    for w in fragbench::TABLE1 {
        let mut row = vec![w.name.to_string()];
        for which in set {
            let alloc = which.create_with_roots(pool_mb(2048), 1 << 20);
            let r = fragbench::run(&alloc, w, frag_params(scale));
            scale.emit(&format!("fig01b_frag_space/{}", w.name), &r.measurement);
            row.push(mib(r.peak_mapped));
        }
        let rrefs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
        rep.row(&rrefs);
    }
    print!("{}", rep.render());
}

pub(crate) fn frag_params(scale: &Scale) -> fragbench::Params {
    let mut p = fragbench::Params::quick();
    p.total_bytes = scale.ops(p.total_bytes, 8 << 20);
    p.live_cap = scale.ops(p.live_cap, 2 << 20);
    p
}

/// Fig. 2: the first 1000 metadata-flush addresses under DBMStest for four
/// allocators — summarised as spread statistics plus a coarse position
/// histogram (the paper plots the raw scatter).
pub fn run_fig02(scale: &Scale) {
    println!("\n== Fig 2: metadata flush-address scatter under DBMStest ==");
    let mut rep = Reporter::new(&[
        "allocator",
        "samples",
        "addr span (MiB)",
        "unique 4K pages",
        "median |delta| (KiB)",
        "histogram (16 bins over heap)",
    ]);
    for w in [Which::NvmMalloc, Which::Pallocator, Which::Pmdk, Which::Makalu] {
        let pool = pool_mb(2048);
        let alloc = w.create_with_roots(std::sync::Arc::clone(&pool), 1 << 19);
        pool.stats().enable_trace();
        // Enough large objects that extents span many 4 MB regions — the
        // paper's DBMStest heap is GBs, so its header writes scatter widely.
        let mut p = dbmstest::Params::quick(4);
        p.objects = scale.ops(220, 60);
        p.iterations = scale.ops(p.iterations, 2);
        dbmstest::run(&alloc, p);
        let trace = pool.stats().trace();
        pool.stats().disable_trace();
        // The paper samples a *warmed* heap; take the last 1000 metadata
        // flushes so the trace reflects steady-state header updates spread
        // over the grown heap, not the first region being populated.
        let mut addrs: Vec<u64> = trace
            .iter()
            .rev()
            .filter(|r| r.kind == FlushKind::Meta)
            .take(1000)
            .map(|r| r.addr)
            .collect();
        addrs.reverse();
        if addrs.is_empty() {
            rep.row(&[w.name(), "0", "-", "-", "-", "-"]);
            continue;
        }
        let lo = *addrs.iter().min().expect("nonempty");
        let hi = *addrs.iter().max().expect("nonempty");
        let pages: std::collections::HashSet<u64> = addrs.iter().map(|a| a >> 12).collect();
        let mut deltas: Vec<u64> = addrs.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
        deltas.sort_unstable();
        let median = deltas.get(deltas.len() / 2).copied().unwrap_or(0);
        let mut bins = [0usize; 16];
        let span = (hi - lo).max(1);
        for a in &addrs {
            bins[((a - lo) * 15 / span) as usize] += 1;
        }
        let hist: String = bins
            .iter()
            .map(|&b| {
                let level = (b * 8 / addrs.len().max(1)).min(7);
                [' ', '.', ':', '-', '=', '+', '*', '#'][level]
            })
            .collect();
        rep.row(&[
            w.name(),
            &addrs.len().to_string(),
            &format!("{:.1}", span as f64 / (1 << 20) as f64),
            &pages.len().to_string(),
            &format!("{:.1}", median as f64 / 1024.0),
            &format!("[{hist}]"),
        ]);
    }
    print!("{}", rep.render());
    println!("(wide spans + many unique pages = the paper's random scatter;\n NVAlloc's booklog replaces these writes with sequential appends)");
}

/// §3.1 micro-measurement: modelled reflush latency vs. reflush distance.
pub fn run_tab_reflush(_scale: &Scale) {
    println!("\n== §3.1: flush latency vs. reflush distance (model constants) ==");
    let mut rep = Reporter::new(&["distance", "latency (ns)", "classification"]);
    for d in 0..6u64 {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(1 << 20)
                .latency_mode(LatencyMode::Virtual)
                .model_params(ModelParams { xpbuf_miss_ns: 0, ..ModelParams::default() }),
        );
        let mut t = pool.register_thread();
        // Warm the line, then flush `d` distinct lines, then re-flush it.
        pool.flush(&mut t, 0, 8, FlushKind::Data);
        for i in 0..d {
            pool.flush(&mut t, (i + 1) * 64, 8, FlushKind::Data);
        }
        let before = t.virtual_ns();
        pool.flush(&mut t, 0, 8, FlushKind::Data);
        let ns = t.virtual_ns() - before;
        let class = if d < 4 { "reflush" } else { "regular (sequential)" };
        rep.row(&[&d.to_string(), &ns.to_string(), class]);
    }
    print!("{}", rep.render());
}
