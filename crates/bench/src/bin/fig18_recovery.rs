//! Fig. 18: recovery time.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_recovery::run_fig18(&scale);
}
