//! GlobalAlloc/C-shim front end vs the system allocator.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_global::run(&scale);
}
