//! Fig. 12: large allocations.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_large::run_fig12(&scale);
}
