//! Fig. 11: execution-time breakdown.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::breakdown::run_fig11(&scale);
}
