//! Run every experiment in sequence (the full paper reproduction).
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    use nvalloc_bench::experiments as e;
    e::motivation::run_tab_reflush(&scale);
    e::motivation::run_fig01a(&scale);
    e::motivation::run_fig01b(&scale);
    e::motivation::run_fig02(&scale);
    e::fig_small::run_fig09(&scale);
    e::fig_small::run_fig10(&scale);
    e::breakdown::run_fig11(&scale);
    e::fig_large::run_fig12(&scale);
    e::fig_space::run_fig13(&scale);
    e::fig_fptree::run_fig14(&scale);
    e::fig_frag::run_fig15(&scale);
    e::fig_frag_timeline::run_frag_timeline(&scale);
    e::stripes::run_fig16a(&scale);
    e::stripes::run_fig16b(&scale);
    e::fig_large::run_fig17(&scale);
    e::fig_recovery::run_fig18(&scale);
    e::stripes::run_fig19(&scale);
    e::fig_small::run_fig20(&scale);
    e::fig_large::run_fig21(&scale);
    e::fig_scalability::run_fig22(&scale);
    e::fig_global::run(&scale);
}
