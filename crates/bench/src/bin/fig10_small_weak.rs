//! Fig. 10: small allocations, weakly consistent.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_small::run_fig10(&scale);
}
