//! Fragmentation over time: Fragbench W3 churn with the heap-observatory
//! timeline sampler, NVAlloc-LOG vs. PMDK and Makalu.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_frag_timeline::run_frag_timeline(&scale);
}
