//! Fig. 2: metadata flush-address scatter.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::motivation::run_fig02(&scale);
}
