//! Fig. 1a: reflush share of allocator flushes.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::motivation::run_fig01a(&scale);
}
