//! Diagnostic: per-configuration PM event counts (not a paper figure).
use nvalloc::NvConfig;
use nvalloc_workloads::allocators::create_custom;
use nvalloc_workloads::threadtest;

fn main() {
    for s in [1usize, 2, 6, 16, 32] {
        let pool = nvalloc_pmem::PmemPool::new(
            nvalloc_pmem::PmemConfig::default()
                .pool_size(512 << 20)
                .latency_mode(nvalloc_pmem::LatencyMode::Virtual),
        );
        let cfg = NvConfig::log().stripes(s).morphing(false);
        let alloc = create_custom(pool, cfg, 1 << 19);
        let m = threadtest::run(
            &alloc,
            threadtest::Params { threads: 1, iterations: 5, objects: 400, size: 64 },
        );
        let st = m.stats;
        println!(
            "S={s:>2} flushes={} reflush={} seq={} rand={} xpmiss={} elapsed_ms={:.2}",
            st.flushes,
            st.reflushes,
            st.seq_writes,
            st.rand_writes,
            st.xpbuf_misses,
            m.elapsed_ms()
        );
    }
}
