//! Fig. 21: large allocations under eADR.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_large::run_fig21(&scale);
}
