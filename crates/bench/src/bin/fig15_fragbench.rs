//! Fig. 15: Fragbench space + performance.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_frag::run_fig15(&scale);
}
