//! Offline pool auditor ("heap doctor").
//!
//! Opens a heap image saved with `--save-pool` (or
//! `PmemPool::save_heap_file`), cross-checks every persistent structure
//! (booklog / region table vs. heap spans, slab headers and bitmaps,
//! morph index tables, WAL vs. committed state, root slots), and prints
//! one JSON report line. Exit status 1 when violations were found.
//!
//! ```text
//! nvalloc_doctor <image.heap> [--gc | --internal | --base] [--pretty] [--profile]
//! ```
//!
//! Arena and root counts are read from the pool header; the variant flag
//! must match the configuration the pool was created with (defaults to
//! NVAlloc-LOG, the configuration every fig binary saves). `--profile`
//! additionally prints the per-site attribution table reconstructed from
//! the provenance sidelogs (profiling-enabled images only; the sampling
//! period is read from the pool header, so no rate flag is needed).

use std::path::Path;
use std::process::ExitCode;

use nvalloc::doctor::audit_pool;
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut image: Option<String> = None;
    let mut cfg = NvConfig::log();
    let mut pretty = false;
    let mut profile = false;
    for a in &args {
        match a.as_str() {
            "--gc" => cfg = NvConfig::gc(),
            "--internal" => cfg = NvConfig::internal(),
            "--base" => cfg = NvConfig::base(),
            "--pretty" => pretty = true,
            "--profile" => profile = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: nvalloc_doctor <image.heap> [--gc|--internal|--base] [--pretty] [--profile]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("nvalloc_doctor: unknown flag {flag} (try --help)");
                return ExitCode::FAILURE;
            }
            path => image = Some(path.to_string()),
        }
    }
    let Some(image) = image else {
        eprintln!(
            "usage: nvalloc_doctor <image.heap> [--gc|--internal|--base] [--pretty] [--profile]"
        );
        return ExitCode::FAILURE;
    };

    let pool = match PmemPool::open_heap_file(
        Path::new(&image),
        PmemConfig::default().latency_mode(LatencyMode::Off),
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("nvalloc_doctor: cannot open {image}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Arena/root counts live in the pool header; fold them into the
    // config so images from any `--threads` run audit with the right
    // layout.
    let arenas = pool.read_u64(8) as usize;
    let roots = pool.read_u64(16) as usize;
    if arenas > 0 {
        cfg = cfg.arenas(arenas);
    }
    if roots > 0 {
        cfg = cfg.roots(roots);
    }

    let rep = audit_pool(&pool, &cfg);
    println!("{}", rep.to_json());
    if profile {
        if rep.prof_sample_bytes == 0 {
            eprintln!("profile: image was not profiled (pool header period is 0)");
        } else {
            for r in &rep.prof_site_table {
                eprintln!(
                    "PROF site {:016x}: {} object(s), {} byte(s)",
                    r.site, r.live_objects, r.live_bytes
                );
            }
            eprintln!(
                "profile: {} record(s), {} survivor(s) across {} site(s), {} stale, \
                 {} dropped, {} sampled live byte(s) vs {} swept",
                rep.prof_records,
                rep.prof_live_sampled,
                rep.prof_sites,
                rep.prof_stale_records,
                rep.prof_dropped,
                rep.prof_sampled_live_bytes,
                rep.live_small_bytes + rep.live_large_bytes
            );
        }
    }
    if pretty {
        for v in &rep.violations {
            eprintln!("VIOLATION [{}] {}", v.check, v.detail);
        }
        eprintln!(
            "{} slab(s) (+{} reservoir), {} extent(s), {} booklog entr(ies), \
             {} WAL entr(ies), {} violation(s)",
            rep.slabs,
            rep.reservoir_slabs,
            rep.extents,
            rep.booklog_entries,
            rep.wal_entries,
            rep.violations.len()
        );
    }
    if rep.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
