//! Offline pool auditor ("heap doctor").
//!
//! Opens a heap image saved with `--save-pool` (or
//! `PmemPool::save_heap_file`), cross-checks every persistent structure
//! (booklog / region table vs. heap spans, slab headers and bitmaps,
//! morph index tables, WAL vs. committed state, root slots), and prints
//! one JSON report line. Exit status 1 when violations were found.
//!
//! ```text
//! nvalloc_doctor <image.heap> [--gc | --internal | --base] [--pretty]
//! ```
//!
//! Arena and root counts are read from the pool header; the variant flag
//! must match the configuration the pool was created with (defaults to
//! NVAlloc-LOG, the configuration every fig binary saves).

use std::path::Path;
use std::process::ExitCode;

use nvalloc::doctor::audit_pool;
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut image: Option<String> = None;
    let mut cfg = NvConfig::log();
    let mut pretty = false;
    for a in &args {
        match a.as_str() {
            "--gc" => cfg = NvConfig::gc(),
            "--internal" => cfg = NvConfig::internal(),
            "--base" => cfg = NvConfig::base(),
            "--pretty" => pretty = true,
            "--help" | "-h" => {
                eprintln!("usage: nvalloc_doctor <image.heap> [--gc|--internal|--base] [--pretty]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("nvalloc_doctor: unknown flag {flag} (try --help)");
                return ExitCode::FAILURE;
            }
            path => image = Some(path.to_string()),
        }
    }
    let Some(image) = image else {
        eprintln!("usage: nvalloc_doctor <image.heap> [--gc|--internal|--base] [--pretty]");
        return ExitCode::FAILURE;
    };

    let pool = match PmemPool::open_heap_file(
        Path::new(&image),
        PmemConfig::default().latency_mode(LatencyMode::Off),
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("nvalloc_doctor: cannot open {image}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Arena/root counts live in the pool header; fold them into the
    // config so images from any `--threads` run audit with the right
    // layout.
    let arenas = pool.read_u64(8) as usize;
    let roots = pool.read_u64(16) as usize;
    if arenas > 0 {
        cfg = cfg.arenas(arenas);
    }
    if roots > 0 {
        cfg = cfg.roots(roots);
    }

    let rep = audit_pool(&pool, &cfg);
    println!("{}", rep.to_json());
    if pretty {
        for v in &rep.violations {
            eprintln!("VIOLATION [{}] {}", v.check, v.detail);
        }
        eprintln!(
            "{} slab(s) (+{} reservoir), {} extent(s), {} booklog entr(ies), \
             {} WAL entr(ies), {} violation(s)",
            rep.slabs,
            rep.reservoir_slabs,
            rep.extents,
            rep.booklog_entries,
            rep.wal_entries,
            rep.violations.len()
        );
    }
    if rep.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
