//! Fig. 13: space consumption.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_space::run_fig13(&scale);
}
