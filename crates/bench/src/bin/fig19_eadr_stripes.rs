//! Fig. 19: stripes under eADR.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::stripes::run_fig19(&scale);
}
