//! Fig. 16b: SU-threshold sensitivity.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::stripes::run_fig16b(&scale);
}
