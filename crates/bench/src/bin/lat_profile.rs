//! Per-operation latency distribution (beyond the paper's figures): the
//! modelled PM latency of individual malloc/free operations per allocator,
//! reported as p50/p90/p99/max. Shows the *tail* effect of reflushes: the
//! WAL-based baselines' percentiles sit on the reflush plateau while
//! NVAlloc's stay on the sequential-flush floor.
//!
//! Percentiles are reduced from the same log2 histograms (and the same
//! [`LatencyHistogram::quantile`] math) as the core telemetry's `latency`
//! JSON object and the timeline sampler's windowed quantiles, so every
//! percentile column in the repo agrees by construction.

use nvalloc::telemetry::LatencyHistogram;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::Reporter;

fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    let ops = scale.ops(20_000, 2_000);
    println!("== per-op modelled PM latency (ns), {ops} × (64 B malloc + free) ==");
    let mut rep = Reporter::new(&[
        "allocator",
        "malloc p50",
        "malloc p90",
        "malloc p99",
        "malloc max",
        "free p50",
        "free p99",
    ]);
    for which in [
        Which::NvallocLog,
        Which::NvallocGc,
        Which::Pmdk,
        Which::NvmMalloc,
        Which::Pallocator,
        Which::Makalu,
        Which::Ralloc,
    ] {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Virtual),
        );
        let alloc = which.create_with_roots(pool, 1 << 19);
        let mut t = alloc.thread();
        let mut mallocs = LatencyHistogram::default();
        let mut frees = LatencyHistogram::default();
        let mut malloc_max = 0u64;
        for i in 0..ops {
            let root = alloc.root_offset((i % (1 << 16)) * 8);
            let before = t.pm().virtual_ns();
            t.malloc_to(64, root).expect("alloc");
            let mid = t.pm().virtual_ns();
            t.free_from(root).expect("free");
            let after = t.pm().virtual_ns();
            mallocs.record(mid - before);
            malloc_max = malloc_max.max(mid - before);
            frees.record(after - mid);
        }
        rep.row(&[
            which.name(),
            &mallocs.quantile(0.50).to_string(),
            &mallocs.quantile(0.90).to_string(),
            &mallocs.quantile(0.99).to_string(),
            &malloc_max.to_string(),
            &frees.quantile(0.50).to_string(),
            &frees.quantile(0.99).to_string(),
        ]);
    }
    print!("{}", rep.render());
}
