//! Fig. 22 (extension): wall-clock free-path scalability over remote-mix.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_scalability::run_fig22(&scale);
}
