//! Fig. 1b: peak memory under Fragbench.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::motivation::run_fig01b(&scale);
}
