//! Fig. 14: FPTree throughput.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_fptree::run_fig14(&scale);
}
