//! Fig. 17: booklog GC overhead.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_large::run_fig17(&scale);
}
