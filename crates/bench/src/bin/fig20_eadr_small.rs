//! Fig. 20: small allocations under eADR.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_small::run_fig20(&scale);
}
