//! Fig. 9: small allocations, strongly consistent.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::fig_small::run_fig09(&scale);
}
