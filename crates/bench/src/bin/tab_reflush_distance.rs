//! §3.1: reflush latency vs. distance.
fn main() {
    let scale = nvalloc_bench::Scale::from_args();
    nvalloc_bench::experiments::motivation::run_tab_reflush(&scale);
}
