//! Criterion micro-benchmarks of the allocator fast paths: wall-clock cost
//! of malloc/free pairs per allocator and per size class, plus the tcache
//! hit path in isolation. (Latency model off — these measure the *software*
//! overhead; the modelled-PM comparisons live in the fig* binaries.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Off))
}

fn bench_malloc_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("malloc_free_pair");
    for which in [
        Which::NvallocLog,
        Which::NvallocGc,
        Which::Pmdk,
        Which::NvmMalloc,
        Which::Pallocator,
        Which::Makalu,
        Which::Ralloc,
    ] {
        let alloc = which.create(pool());
        let mut t = alloc.thread();
        let root = alloc.root_offset(0);
        g.bench_with_input(BenchmarkId::new("64B", which.name()), &(), |b, ()| {
            b.iter(|| {
                t.malloc_to(64, root).expect("alloc");
                t.free_from(root).expect("free");
            })
        });
    }
    g.finish();
}

fn bench_size_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvalloc_log_by_size");
    let alloc = Which::NvallocLog.create(pool());
    let mut t = alloc.thread();
    let root = alloc.root_offset(0);
    for size in [8usize, 64, 256, 1024, 4096, 16 << 10, 64 << 10, 512 << 10] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                t.malloc_to(size, root).expect("alloc");
                t.free_from(root).expect("free");
            })
        });
    }
    g.finish();
}

fn bench_tcache_hit(c: &mut Criterion) {
    // Pure cache-hit path: alternate two slots so the tcache always has a
    // block ready.
    let alloc = Which::NvallocGc.create(pool());
    let mut t = alloc.thread();
    let r0 = alloc.root_offset(0);
    let r1 = alloc.root_offset(1);
    t.malloc_to(64, r0).expect("warm");
    c.bench_function("tcache_hit_path", |b| {
        b.iter(|| {
            // r0 stays live, keeping the slab warm; r1 cycles through the
            // tcache on every iteration.
            t.malloc_to(64, r1).expect("alloc");
            t.free_from(r1).expect("free");
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_malloc_free, bench_size_classes, bench_tcache_hit
}
criterion_main!(benches);
