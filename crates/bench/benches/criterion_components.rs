//! Criterion micro-benchmarks of the individual metadata mechanisms:
//! bitmap persistence (sequential vs interleaved), WAL micro-log appends,
//! bookkeeping-log append/delete, rtree lookups, and the morph transform.
//! Complements `criterion_alloc` (whole-operation fast paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvalloc::api::PmAllocator;
use nvalloc::internals::{BitmapLayout, PmBitmap, RTree};
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use std::sync::Arc;

fn pool(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Off))
}

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_set_persist");
    for stripes in [1usize, 6] {
        let p = pool(4);
        let mut t = p.register_thread();
        let bm = PmBitmap::new(0, BitmapLayout::new(1024, stripes));
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(stripes), &stripes, |b, _| {
            b.iter(|| {
                bm.set_persist(&p, &mut t, i % 1024);
                bm.clear_persist(&p, &mut t, i % 1024);
                i += 1;
            })
        });
    }
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let tree = RTree::new();
    for k in 0..4096u64 {
        tree.insert_range(k * 65536, 65536, k + 1);
    }
    let mut k = 0u64;
    c.bench_function("rtree_lookup", |b| {
        b.iter(|| {
            k = (k + 9973) % 4096;
            assert!(tree.lookup(k * 65536 + 4096).is_some());
        })
    });
}

fn bench_small_paths_by_variant(c: &mut Criterion) {
    let mut g = c.benchmark_group("variant_small_pair");
    for (name, cfg) in
        [("LOG", NvConfig::log()), ("GC", NvConfig::gc()), ("IC", NvConfig::internal())]
    {
        let a = NvAllocator::create(pool(128), cfg).expect("create");
        let mut t = a.thread();
        let root = a.root_offset(0);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                t.malloc_to(64, root).expect("alloc");
                t.free_from(root).expect("free");
            })
        });
    }
    g.finish();
}

fn bench_large_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("large_extent_pair");
    for (name, cfg) in [("booklog", NvConfig::log()), ("in_place", NvConfig::base())] {
        let a = NvAllocator::create(pool(512), cfg).expect("create");
        let mut t = a.thread();
        let root = a.root_offset(0);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                t.malloc_to(128 << 10, root).expect("alloc");
                t.free_from(root).expect("free");
            })
        });
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // Recovery cost from a prepared clean image with ~1000 objects.
    let p = PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::log()).expect("create");
    {
        let mut t = a.thread();
        for i in 0..1000 {
            t.malloc_to(64 + i % 900, a.root_offset(i)).expect("alloc");
        }
    }
    a.exit();
    let image = p.clean_shutdown_image();
    c.bench_function("recover_1k_objects", |b| {
        b.iter(|| {
            let pool = PmemPool::from_crash_image(image.clone());
            let (_a, report) = NvAllocator::recover(pool, NvConfig::log()).expect("recover");
            assert!(report.slabs > 0);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_bitmap, bench_rtree, bench_small_paths_by_variant, bench_large_path, bench_recovery
}
criterion_main!(benches);
