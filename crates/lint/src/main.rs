//! `nvalloc_lint` — dependency-free static analysis over `crates/**/*.rs`.
//!
//! Four rules, all tuned to the invariants this repo actually relies on:
//!
//! * `unsafe-comment` — every `unsafe` token in non-test code must be
//!   preceded (within three non-empty lines, or on the same line) by a
//!   `// SAFETY:` comment stating the proof obligation.
//! * `persistence` — direct persistence primitives on the pool
//!   (`.write_u64(` / `.flush(` / `.fence(` / …) are allowed only in
//!   `crates/pmem` and the allowlisted persistence modules of
//!   `crates/core/src`. Everything else must go through those modules, so
//!   the pmsan shadow machine and the crash-image tracker see every store.
//! * `repr-c-sizes` — every `#[repr(C)]` type in `crates/core` or
//!   `crates/pmem` must appear in `tests/layout_sizes.rs`, the
//!   compile-time layout table that pins persistent-format sizes.
//! * `determinism` — `std::time` and `rand` are banned from
//!   `crates/core/src` non-test code: recovery and replay must be
//!   deterministic. Deliberate uses (lock-profiling telemetry) carry a
//!   waiver comment.
//!
//! A waiver is a comment on the same or the immediately preceding line:
//! `// nvalloc-lint: allow(<rule>)`. Bodies of `#[cfg(test)] mod … { }`
//! are skipped entirely.
//!
//! Usage:
//!   nvalloc_lint [ROOT]              lint the whole tree (default ".")
//!   nvalloc_lint --file F --as VPATH lint one file as if it lived at
//!                                    VPATH inside the tree (fixtures/CI)
//!
//! Exit status: 0 clean, 1 violations, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// `crates/core/src` files allowed to touch pool persistence primitives
/// directly. Everything else goes through these modules.
const PERSISTENCE_ALLOWLIST: &[&str] = &[
    "arena.rs",
    "bitmap.rs",
    "booklog.rs",
    "front.rs",
    "global.rs",
    "large.rs",
    "morph.rs",
    "prof.rs",
    "recovery.rs",
    "service.rs",
    "slab.rs",
    "wal.rs",
];

/// Method tokens that constitute a direct persistence call on the pool.
const PERSISTENCE_TOKENS: &[&str] = &[
    ".write_u64(",
    ".write_u16(",
    ".fill_bytes(",
    ".flush(",
    ".flush_writeback(",
    ".fence(",
    ".fence_pending(",
    ".persist_u64(",
    ".charge_store(",
];

/// Substrings whose presence in `crates/core/src` non-test code breaks
/// the determinism guarantee.
const DETERMINISM_TOKENS: &[&str] = &["std::time", "use rand", "rand::"];

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// One source line split into executable code (strings blanked, comments
/// removed) and its trailing line-comment text, if any.
#[derive(Debug, Default, Clone)]
struct LineView {
    code: String,
    comment: String,
}

/// Strip comments and string contents, line by line, keeping line-comment
/// text separately so `SAFETY:` / waiver markers remain inspectable.
/// Handles `//`, nested `/* */`, `"…"` with escapes, raw strings
/// (`r"…"` / `r#"…"#`), and char literals without tripping on lifetimes.
fn split_source(src: &str) -> Vec<LineView> {
    let mut out = Vec::new();
    let mut block_depth = 0usize; // nested /* */ depth carried across lines
    let mut raw_hashes: Option<usize> = None; // inside r#"…"# with N hashes
    let mut in_str = false; // inside a normal "…" (can span lines)

    for line in src.lines() {
        let bytes: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if block_depth > 0 {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    block_depth -= 1;
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    block_depth += 1;
                    i += 2;
                } else {
                    // Keep block-comment text visible to the comment
                    // channel too, so /* SAFETY: … */ works.
                    comment.push(c);
                    i += 1;
                }
                continue;
            }
            if let Some(h) = raw_hashes {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..h {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        raw_hashes = None;
                        code.push('"');
                        i += 1 + h;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
                continue;
            }
            if in_str {
                match c {
                    '\\' => {
                        code.push(' ');
                        i += 2; // skip the escaped char, whatever it is
                    }
                    '"' => {
                        in_str = false;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                }
                continue;
            }
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    comment.push_str(&line[byte_index(line, i)..]);
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    block_depth += 1;
                    i += 2;
                }
                '"' => {
                    in_str = true;
                    code.push('"');
                    i += 1;
                }
                'r' if bytes.get(i + 1) == Some(&'"') => {
                    raw_hashes = Some(0);
                    code.push_str("r\"");
                    i += 2;
                }
                'r' if bytes.get(i + 1) == Some(&'#') => {
                    // Count hashes; only a raw string if a quote follows.
                    let mut h = 0usize;
                    while bytes.get(i + 1 + h) == Some(&'#') {
                        h += 1;
                    }
                    if bytes.get(i + 1 + h) == Some(&'"') {
                        raw_hashes = Some(h);
                        code.push_str("r\"");
                        i += 2 + h;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal iff it closes within a few chars
                    // ('x', '\n', '\u{1F}'); otherwise it's a lifetime.
                    let lit_len = char_literal_len(&bytes[i..]);
                    if let Some(n) = lit_len {
                        code.push('\'');
                        for _ in 1..n {
                            code.push(' ');
                        }
                        i += n;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(LineView { code, comment });
    }
    out
}

/// Byte offset of the `i`-th char of `line` (lines are mostly ASCII; this
/// keeps the comment slice correct when they are not).
fn byte_index(line: &str, char_idx: usize) -> usize {
    line.char_indices().nth(char_idx).map_or(line.len(), |(b, _)| b)
}

/// If `chars` (starting at `'`) opens a char literal, its length in chars.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    match chars.get(1)? {
        '\\' => {
            // Escape: '\n', '\'', '\u{...}' — scan to the closing quote.
            let mut j = 2;
            while j < chars.len() && j < 12 {
                if chars[j] == '\'' && chars[j - 1] != '\\' {
                    return Some(j + 1);
                }
                j += 1;
            }
            None
        }
        _ => {
            if chars.get(2) == Some(&'\'') {
                Some(3)
            } else {
                None // lifetime ('a) or loop label ('outer:)
            }
        }
    }
}

/// True if `code` contains `word` as a standalone identifier token.
fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Does line `i` carry a waiver for `rule` (same line or the line above)?
fn waived(lines: &[LineView], i: usize, rule: &str) -> bool {
    let marker = format!("nvalloc-lint: allow({rule})");
    if lines[i].comment.contains(&marker) {
        return true;
    }
    i > 0 && lines[i - 1].comment.contains(&marker)
}

/// Is there a `SAFETY:` comment on this line or within the three
/// preceding non-empty lines?
fn safety_nearby(lines: &[LineView], i: usize) -> bool {
    if lines[i].comment.contains("SAFETY:") {
        return true;
    }
    let mut seen = 0usize;
    let mut j = i;
    while j > 0 && seen < 3 {
        j -= 1;
        let l = &lines[j];
        if l.code.trim().is_empty() && l.comment.trim().is_empty() {
            continue;
        }
        if l.comment.contains("SAFETY:") {
            return true;
        }
        seen += 1;
    }
    false
}

/// Whether `path` (repo-relative, `/`-separated) is subject to each rule.
struct Scope {
    unsafe_rule: bool,
    persistence_rule: bool,
    determinism_rule: bool,
    collect_repr: bool,
}

fn scope_of(vpath: &str) -> Scope {
    let in_core_src = vpath.starts_with("crates/core/src/");
    let in_pmem = vpath.starts_with("crates/pmem/");
    let base = vpath.rsplit('/').next().unwrap_or(vpath);
    Scope {
        unsafe_rule: true,
        persistence_rule: in_core_src && !PERSISTENCE_ALLOWLIST.contains(&base),
        determinism_rule: in_core_src,
        collect_repr: in_core_src || in_pmem,
    }
}

/// Lint one file. Appends `(struct_name, vpath, line)` for every
/// `#[repr(C)]` type it sees to `repr_types`.
fn lint_file(
    vpath: &str,
    src: &str,
    repr_types: &mut Vec<(String, String, usize)>,
) -> Vec<Violation> {
    let scope = scope_of(vpath);
    let lines = split_source(src);
    let mut out = Vec::new();

    let mut depth = 0usize;
    let mut skip_above: Option<usize> = None; // inside #[cfg(test)] mod at this depth
    let mut pending_test_attr = false;

    for (i, l) in lines.iter().enumerate() {
        let code = l.code.trim();
        let opens = l.code.matches('{').count();
        let closes = l.code.matches('}').count();
        let in_skip = skip_above.is_some();

        if !in_skip && !code.is_empty() {
            if let Some(rest) = code.strip_prefix("#[cfg(test)]") {
                pending_test_attr = true;
                // `#[cfg(test)] mod x { … }` on one line still enters.
                if is_mod_item(rest) {
                    skip_above = Some(depth);
                    pending_test_attr = false;
                }
            } else if code.starts_with("#[") || code.starts_with("#!") {
                // Other attributes between #[cfg(test)] and the item
                // (e.g. #[allow]) keep the pending flag alive.
            } else if pending_test_attr {
                if is_mod_item(code) {
                    skip_above = Some(depth);
                }
                pending_test_attr = false;
            }
        }

        let now_skipped = skip_above.is_some();
        if !now_skipped {
            run_rules(vpath, &scope, &lines, i, &mut out, repr_types);
        }

        depth = depth + opens - closes.min(depth + opens);
        if let Some(d) = skip_above {
            if depth <= d {
                skip_above = None;
            }
        }
    }
    out
}

/// Does this code line declare a module (`mod x {` / `pub(crate) mod x;`)?
fn is_mod_item(code: &str) -> bool {
    let code = code.trim();
    code.starts_with("mod ") || code.contains(" mod ") || code == "mod"
}

fn run_rules(
    vpath: &str,
    scope: &Scope,
    lines: &[LineView],
    i: usize,
    out: &mut Vec<Violation>,
    repr_types: &mut Vec<(String, String, usize)>,
) {
    let l = &lines[i];
    let lineno = i + 1;

    if scope.unsafe_rule && has_word(&l.code, "unsafe") && !safety_nearby(lines, i) {
        out.push(Violation {
            file: vpath.to_string(),
            line: lineno,
            rule: "unsafe-comment",
            msg: "`unsafe` without a `// SAFETY:` comment on or within the 3 preceding lines"
                .to_string(),
        });
    }

    if scope.persistence_rule {
        for tok in PERSISTENCE_TOKENS {
            if l.code.contains(tok) && !waived(lines, i, "persistence") {
                out.push(Violation {
                    file: vpath.to_string(),
                    line: lineno,
                    rule: "persistence",
                    msg: format!(
                        "direct persistence call `{tok}` outside the allowlisted modules \
                         ({} under crates/core/src, or crates/pmem)",
                        PERSISTENCE_ALLOWLIST.join(", ")
                    ),
                });
                break;
            }
        }
    }

    if scope.determinism_rule {
        for tok in DETERMINISM_TOKENS {
            if l.code.contains(tok) && !waived(lines, i, "determinism") {
                out.push(Violation {
                    file: vpath.to_string(),
                    line: lineno,
                    rule: "determinism",
                    msg: format!(
                        "`{tok}` in crates/core non-test code; recovery must be deterministic \
                         (waive deliberate telemetry uses with \
                         `// nvalloc-lint: allow(determinism)`)"
                    ),
                });
                break;
            }
        }
    }

    if scope.collect_repr && l.code.contains("#[repr(C)]") {
        // The type name is on this line or one of the next few
        // (attributes/derives may sit in between).
        for near in lines.iter().take(lines.len().min(i + 6)).skip(i) {
            if let Some(name) = type_name_in(&near.code) {
                repr_types.push((name, vpath.to_string(), lineno));
                break;
            }
        }
    }
}

/// Extract the type name from a `struct X` / `union X` / `enum X` line.
fn type_name_in(code: &str) -> Option<String> {
    for kw in ["struct ", "union ", "enum "] {
        if let Some(pos) = code.find(kw) {
            let rest = &code[pos + kw.len()..];
            let name: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

/// Cross-check collected `#[repr(C)]` types against the layout table.
fn check_repr_coverage(root: &Path, repr_types: &[(String, String, usize)]) -> Vec<Violation> {
    if repr_types.is_empty() {
        return Vec::new();
    }
    let table_path = root.join("tests/layout_sizes.rs");
    let table = fs::read_to_string(&table_path).unwrap_or_default();
    let mut out = Vec::new();
    for (name, file, line) in repr_types {
        if !table.contains(name.as_str()) {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: "repr-c-sizes",
                msg: format!(
                    "#[repr(C)] type `{name}` is not covered by tests/layout_sizes.rs; \
                     add a size/alignment assertion for it"
                ),
            });
        }
    }
    out
}

/// All `.rs` files under `root/crates`, skipping `target/` and `fixtures/`.
fn walk(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut stack = vec![root.join("crates")];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let rd = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in rd {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn lint_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let mut repr_types = Vec::new();
    for path in walk(root)? {
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let vpath = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        violations.extend(lint_file(&vpath, &src, &mut repr_types));
    }
    violations.extend(check_repr_coverage(root, &repr_types));
    Ok(violations)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => lint_tree(Path::new(".")),
        [root] if !root.starts_with("--") => lint_tree(Path::new(root)),
        [flag_f, file, flag_as, vpath] if flag_f == "--file" && flag_as == "--as" => {
            fs::read_to_string(file).map_err(|e| format!("read {file}: {e}")).map(|src| {
                let mut repr_types = Vec::new();
                lint_file(vpath, &src, &mut repr_types)
            })
        }
        _ => {
            eprintln!("usage: nvalloc_lint [ROOT] | nvalloc_lint --file FILE --as VPATH");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(violations) if violations.is_empty() => {
            println!("nvalloc_lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("nvalloc_lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nvalloc_lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(vpath: &str, src: &str) -> Vec<Violation> {
        let mut repr = Vec::new();
        lint_file(vpath, src, &mut repr)
    }

    #[test]
    fn stripper_removes_strings_and_comments() {
        let v = split_source("let x = \"unsafe // not code\"; // unsafe here\n/* unsafe */ let y;");
        assert!(!v[0].code.contains("unsafe"));
        assert!(v[0].comment.contains("unsafe here"));
        assert!(!v[1].code.contains("unsafe"));
        assert!(v[1].comment.contains("unsafe"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let v = split_source("let r = r#\"unsafe \" inside\"#; fn f<'a>(x: &'a u8) {}");
        assert!(!v[0].code.contains("unsafe"));
        assert!(v[0].code.contains("fn f<'a>"));
        let v = split_source("let c = 'u'; let d = '\\n'; let bad = unsafe { 0 };");
        assert!(has_word(&v[0].code, "unsafe"));
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let src = "fn f() {\n    let p = unsafe { std::ptr::null::<u8>() };\n}\n";
        let v = lint_str("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-comment");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_ok() {
        let src = "fn f() {\n    // SAFETY: null is a valid *const u8.\n    let p = unsafe { std::ptr::null::<u8>() };\n}\n";
        assert!(lint_str("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_code_attr_not_flagged() {
        assert!(lint_str("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn persistence_outside_allowlist_flagged() {
        let src = "fn f(pool: &P, t: &mut T) {\n    pool.write_u64(t, 0, 1);\n}\n";
        let v = lint_str("crates/core/src/shards.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "persistence");
        // Same code in an allowlisted module or another crate is fine.
        assert!(lint_str("crates/core/src/wal.rs", src).is_empty());
        assert!(lint_str("crates/bench/src/scale.rs", src).is_empty());
    }

    #[test]
    fn persistence_in_test_mod_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(pool: &P, t: &mut T) {\n        pool.write_u64(t, 0, 1);\n    }\n}\n";
        assert!(lint_str("crates/core/src/shards.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_mod_still_linted() {
        let src = "#[cfg(not(test))]\nmod faults {\n    fn f(pool: &P, t: &mut T) { pool.fence(t); }\n}\n";
        let v = lint_str("crates/core/src/shards.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn determinism_flagged_and_waivable() {
        let src = "use std::time::Instant;\n";
        let v = lint_str("crates/core/src/config.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "determinism");
        let waived =
            "// nvalloc-lint: allow(determinism) — lock-profiling only\nuse std::time::Instant;\n";
        assert!(lint_str("crates/core/src/config.rs", waived).is_empty());
        // Outside crates/core the rule does not apply.
        assert!(lint_str("crates/bench/src/scale.rs", src).is_empty());
    }

    #[test]
    fn repr_c_collected() {
        let mut repr = Vec::new();
        let src = "#[repr(C)]\n#[derive(Clone, Copy)]\npub struct WalEntryRaw {\n    a: u64,\n}\n";
        let v = lint_file("crates/core/src/wal.rs", src, &mut repr);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(repr.len(), 1);
        assert_eq!(repr[0].0, "WalEntryRaw");
    }

    #[test]
    fn fixture_bad_unsafe_fails() {
        let src = include_str!("../fixtures/bad_unsafe.rs");
        let v = lint_str("crates/lint/fixtures/bad_unsafe.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "unsafe-comment"),
            "expected unsafe-comment violation, got {v:?}"
        );
    }

    #[test]
    fn fixture_bad_persistence_fails() {
        let src = include_str!("../fixtures/bad_persistence.rs");
        let v = lint_str("crates/core/src/not_allowlisted.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "persistence"),
            "expected persistence violation, got {v:?}"
        );
    }

    #[test]
    fn fixture_clean_passes() {
        let src = include_str!("../fixtures/clean.rs");
        let v = lint_str("crates/core/src/not_allowlisted.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn real_tree_is_clean() {
        // The crate sits at crates/lint; the repo root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = lint_tree(&root).expect("walk tree");
        assert!(v.is_empty(), "lint violations in tree:\n{}", {
            let mut s = String::new();
            for viol in &v {
                s.push_str(&format!("{viol}\n"));
            }
            s
        });
    }
}
