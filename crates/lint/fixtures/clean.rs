// Lint fixture: passes every rule even under the strictest scope
// (crates/core/src, off the persistence allowlist).

/// Doubles a value; no unsafe, no persistence calls, no clocks.
pub fn double(x: u64) -> u64 {
    x.wrapping_mul(2)
}

#[cfg(test)]
mod tests {
    // Test modules are skipped wholesale, so even a direct persistence
    // call here is fine:
    pub fn in_tests(pool: &Pool, t: &mut Thread) {
        pool.write_u64(t, 0, 1);
    }
}
