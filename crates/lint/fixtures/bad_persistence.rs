// Lint fixture: a direct pool persistence call in a module that is not
// on the persistence allowlist. Linted as if it lived at
// crates/core/src/not_allowlisted.rs, it must FAIL the persistence rule.

pub fn sneaky_store(pool: &Pool, t: &mut Thread) {
    pool.write_u64(t, 0x40, 0xdead_beef);
    pool.flush(t, 0x40, 8);
    pool.fence(t);
}
