// Lint fixture: `unsafe` with no SAFETY comment anywhere nearby.
// This file is excluded from the tree walk and must FAIL the
// unsafe-comment rule when linted explicitly.

pub fn deref_raw(p: *const u64) -> u64 {
    unsafe { *p }
}
