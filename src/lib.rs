//! Umbrella crate for the NVAlloc reproduction workspace: hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). The actual library code lives in the `crates/` members:
//!
//! * [`nvalloc_pmem`] — emulated persistent memory with a flush cost model
//! * [`nvalloc`] — the NVAlloc allocator (the paper's contribution)
//! * [`nvalloc_baselines`] — PMDK/nvm_malloc/PAllocator/Makalu/Ralloc-like
//! * [`nvalloc_fptree`] — the FPTree application
//! * [`nvalloc_workloads`] — benchmark generators and harness
//!
//! Start with `examples/quickstart.rs`, then see DESIGN.md for the map.

pub use nvalloc;
pub use nvalloc::global;
pub use nvalloc_baselines;
pub use nvalloc_fptree;
pub use nvalloc_pmem;
pub use nvalloc_workloads;
