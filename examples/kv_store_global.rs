//! A key-value store written against *plain Rust collections* — no
//! allocator API in sight — yet running entirely on persistent memory:
//! `#[global_allocator]` routes every `HashMap` bucket and `Vec` payload
//! through NVAlloc's `GlobalAlloc` front end, and the C-ABI shim
//! (`nv_malloc`/`nv_free`) interoperates on the same heap. The finale
//! simulates a process that exits without freeing: after a shutdown and
//! re-attach, every surviving allocation is enumerated, intact, and
//! reclaimed through the recovered-object API.
//!
//! Run with: `cargo run --release --example kv_store_global`

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::global::{self, nv_free, nv_malloc, nv_usable_size, GlobalNv};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

#[global_allocator]
static ALLOC: GlobalNv = GlobalNv;

const KEYS: u64 = 50_000;

fn value_for(k: u64, gen: u8) -> Vec<u8> {
    let len = 64 + (k % 128) as usize;
    (0..len).map(|i| (k as u8) ^ (i as u8) ^ gen).collect()
}

fn main() {
    // Allocations made before init (argv handling, this println's
    // machinery) were served by System; the front end routes their frees
    // back there by pointer provenance.
    println!("persistent KV store on #[global_allocator] NVAlloc\n");
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(512 << 20).latency_mode(LatencyMode::Off));
    global::init(Arc::clone(&pool), NvConfig::log()).expect("init");

    // --- plain-Rust KV workload, transparently on PM ---
    let mut store: HashMap<u64, Vec<u8>> = HashMap::new();
    for k in 0..KEYS {
        store.insert(k, value_for(k, 0));
    }
    for k in 0..KEYS {
        match k % 4 {
            0 => {
                store.insert(KEYS + k, value_for(KEYS + k, 0));
            }
            1 => assert_eq!(store.get(&k).expect("hit")[0], k as u8),
            2 => {
                store.insert(k, value_for(k, 7));
            }
            _ => {
                store.remove(&k);
            }
        }
    }
    let (live, mapped) =
        global::with_allocator(|a| (a.live_bytes(), a.heap_mapped_bytes())).expect("initialized");
    println!("after {KEYS} inserts + {KEYS} mixed ops:");
    println!("  entries   {:>12}", store.len());
    println!("  live      {:>12} B", live);
    println!("  mapped    {:>12} B", mapped);

    // --- C-ABI shim interop on the same heap ---
    let raw = nv_malloc(1 << 20);
    assert!(!raw.is_null());
    assert!(nv_usable_size(raw) >= 1 << 20);
    nv_free(raw);

    // --- simulate an exit that never frees, then recover ---
    let entries = store.len();
    std::mem::forget(store); // the "crash": live objects, no frees
    global::shutdown().expect("shutdown");
    let rep = global::init(Arc::clone(&pool), NvConfig::log()).expect("re-attach");
    assert!(!rep.created && rep.normal_shutdown);
    let recovered = global::recovered_objects();
    assert!(
        recovered.len() > entries,
        "expected ≥ {entries} recovered objects (values + table), got {}",
        recovered.len()
    );
    let bytes: usize = recovered.iter().map(|(_, u)| *u).sum();
    println!("\nafter shutdown + re-attach:");
    println!("  recovered {:>12} objects ({bytes} B usable) — nothing leaked", recovered.len());
    for (ptr, _) in &recovered {
        nv_free(ptr.cast());
    }
    drop(recovered); // the list itself lived on the pool
    let live = global::with_allocator(|a| a.live_bytes()).expect("initialized");
    println!("  live      {:>12} B after bulk reclaim (slot directory only)", live);
    // What remains is the front end's own slot directory: one 4 KiB page
    // per 255 objects ever simultaneously live, retained for reuse.
    assert!(live <= 2 << 20, "heap should hold only the directory, not {live} B");
    println!("\nok");
}
