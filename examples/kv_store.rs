//! A persistent key-value store built on FPTree + NVAlloc: the paper's
//! §6.3 application scenario. Inserts 100k small KV pairs (128 B payloads,
//! as in Facebook's workloads), mixes reads/updates/deletes, and compares
//! the allocator-induced PM traffic of NVAlloc-LOG against a PMDK-like
//! baseline.
//!
//! Run with: `cargo run --release --example kv_store`

use std::sync::Arc;

use nvalloc_fptree::FpTree;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;

fn drive(which: Which) -> (f64, u64, f64) {
    let pool = PmemPool::new(
        PmemConfig::default().pool_size(512 << 20).latency_mode(LatencyMode::Virtual),
    );
    let alloc = which.create_with_roots(Arc::clone(&pool), 64);
    let tree = FpTree::new(Arc::clone(&alloc), 128).expect("tree");
    let mut s = tree.session();

    let n: u64 = 100_000;
    for k in 0..n {
        s.insert(k, k * 3).expect("insert");
    }
    pool.stats().reset();
    s.thread_mut().pm_mut().reset_clock();
    let start = std::time::Instant::now();
    let mut ops = 0u64;
    for k in 0..n {
        match k % 4 {
            0 => {
                s.insert(n + k, k).expect("insert");
            }
            1 => {
                assert_eq!(s.get(k), Some(k * 3));
            }
            2 => {
                s.insert(k, k * 5).expect("update");
            }
            _ => {
                s.remove(k).expect("remove");
            }
        }
        ops += 1;
    }
    let elapsed = start.elapsed().as_nanos() as u64 + s.thread().pm().virtual_ns();
    let snap = pool.stats().snapshot();
    (ops as f64 / elapsed as f64 * 1e3, snap.flushes, snap.reflush_pct())
}

fn main() {
    println!("persistent KV store (FPTree, 100k warm + 100k mixed ops)\n");
    println!("{:<12} {:>10} {:>12} {:>10}", "allocator", "Mops/s", "flushes", "reflush %");
    for which in [Which::NvallocLog, Which::Pmdk] {
        let (mops, flushes, reflush) = drive(which);
        println!("{:<12} {:>10.2} {:>12} {:>9.1}%", which.name(), mops, flushes, reflush);
    }
    println!("\nNVAlloc's interleaved metadata and per-thread WAL slots cut the");
    println!("reflush share, which is where the throughput difference comes from.");
}
