//! Quickstart: create an emulated PM pool, run NVAlloc on it, allocate and
//! free persistent objects, inspect the PM traffic, and survive a crash.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An emulated persistent-memory pool: 64 MiB, virtual-latency
    //    model, crash tracking on so we can simulate a power failure.
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Virtual)
            .crash_tracking(true),
    );

    // 2. NVAlloc-LOG: write-ahead logging, interleaved metadata mapping,
    //    slab morphing, log-structured bookkeeping — the paper's defaults.
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log())?;
    let mut t = alloc.thread();

    // 3. Allocate a 100-byte object, attached atomically to root slot 0.
    let root = alloc.root_offset(0);
    let obj = t.malloc_to(100, root)?;
    println!("allocated 100 B at pool offset {obj:#x}, attached to root 0");

    // 4. Persist application data into it, like a real PM program.
    pool.write_u64(obj, 0xC0FFEE);
    pool.flush(t.pm_mut(), obj, 8, FlushKind::Data);
    pool.fence(t.pm_mut());

    // 5. Inspect the allocator-induced PM traffic.
    let s = pool.stats().snapshot();
    println!(
        "PM traffic so far: {} flushes ({} reflushes, {:.1} %), {} fences",
        s.flushes,
        s.reflushes,
        s.reflush_pct(),
        s.fences
    );

    // 6. Crash! Only flushed cache lines survive.
    let image = pool.crash();
    println!("simulated power failure; recovering …");
    let rebooted = PmemPool::from_crash_image(image);
    let (alloc2, report) = NvAllocator::recover(Arc::clone(&rebooted), NvConfig::log())?;
    println!(
        "recovered: {} slabs, {} extents, {} WAL entries replayed, normal_shutdown={}",
        report.slabs, report.extents, report.wal_replayed, report.normal_shutdown
    );

    // 7. Our object is still there, reachable from the same root.
    let obj2 = rebooted.read_u64(alloc2.root_offset(0));
    assert_eq!(obj2, obj, "root still points at the object");
    assert_eq!(rebooted.read_u64(obj2), 0xC0FFEE, "payload intact");
    println!("object survived at {obj2:#x} with payload {:#x}", rebooted.read_u64(obj2));

    // 8. And it can be freed through the recovered allocator.
    let mut t2 = alloc2.thread();
    t2.free_from(alloc2.root_offset(0))?;
    println!("freed after recovery; live bytes = {}", alloc2.live_bytes());
    Ok(())
}
