//! Fragbench as a *linked binary*: the Table-1 churn shapes (W1–W4 from
//! the paper's fragmentation study) re-expressed as ordinary `Vec<u8>`
//! allocations in a program whose `#[global_allocator]` is NVAlloc. Where
//! `crates/workloads/fragbench` drives the slot API directly, this binary
//! exercises the same size distributions through `malloc`-shaped traffic
//! — Layout padding, realloc-free Vec growth, and the C front end's slot
//! directory all participate — and reports the heap-mapped overhead
//! factor against the live-byte cap, per workload and cumulatively.
//!
//! Run with: `cargo run --release --example fragbench_global`

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::global::{self, GlobalNv};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: GlobalNv = GlobalNv;

/// Size distribution for one phase, mirroring `fragbench::SizeDist`.
#[derive(Clone, Copy)]
enum Dist {
    Fixed(usize),
    Uniform(usize, usize),
}

impl Dist {
    fn sample(&self, rng: &mut SmallRng) -> usize {
        match *self {
            Dist::Fixed(n) => n,
            Dist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

struct Workload {
    name: &'static str,
    before: Dist,
    delete_ratio: f64,
    after: Dist,
}

/// The four Table-1 shapes, same parameters as `fragbench::TABLE1`.
const TABLE1: [Workload; 4] = [
    Workload { name: "W1", before: Dist::Fixed(100), delete_ratio: 0.9, after: Dist::Fixed(130) },
    Workload {
        name: "W2",
        before: Dist::Uniform(100, 150),
        delete_ratio: 0.0,
        after: Dist::Uniform(200, 250),
    },
    Workload {
        name: "W3",
        before: Dist::Uniform(100, 150),
        delete_ratio: 0.9,
        after: Dist::Uniform(200, 250),
    },
    Workload {
        name: "W4",
        before: Dist::Uniform(100, 200),
        delete_ratio: 0.5,
        after: Dist::Uniform(1000, 2000),
    },
];

const CHURN_BYTES: usize = 96 << 20; // total allocated through each before-phase
const LIVE_CAP: usize = 24 << 20; // live-set ceiling, the overhead denominator

fn run_workload(w: &Workload, rng: &mut SmallRng) -> (usize, usize) {
    let mut objs: Vec<Vec<u8>> = Vec::new();
    let mut live = 0usize;
    let mut churned = 0usize;
    // Phase 1: churn `before`-sized objects, capping the live set.
    while churned < CHURN_BYTES {
        let len = w.before.sample(rng);
        objs.push(vec![0xF6u8; len]);
        live += len;
        churned += len;
        while live > LIVE_CAP {
            let victim = rng.gen_range(0..objs.len());
            live -= objs.swap_remove(victim).len();
        }
    }
    // Phase 2: delete a ratio of the survivors.
    let target = ((objs.len() as f64) * w.delete_ratio) as usize;
    for _ in 0..target {
        let victim = rng.gen_range(0..objs.len());
        live -= objs.swap_remove(victim).len();
    }
    // Phase 3: refill to the cap with `after`-sized objects — the shape
    // shift is what manufactures fragmentation pressure.
    while live < LIVE_CAP {
        let len = w.after.sample(rng);
        objs.push(vec![0xA5u8; len]);
        live += len;
    }
    let stats =
        global::with_allocator(|a| (a.live_bytes(), a.heap_mapped_bytes())).expect("initialized");
    drop(objs);
    stats
}

fn main() {
    println!("fragbench (Table-1 shapes) under #[global_allocator] NVAlloc\n");
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(512 << 20).latency_mode(LatencyMode::Off));
    global::init(Arc::clone(&pool), NvConfig::log()).expect("init");
    let mut rng = SmallRng::seed_from_u64(0xF6);

    println!("{:<4} {:>14} {:>14} {:>10}", "wl", "live (B)", "mapped (B)", "overhead");
    let mut worst = 0.0f64;
    for w in &TABLE1 {
        let (live, mapped) = run_workload(w, &mut rng);
        // The allocator sees more live bytes than the Vec payloads (header
        // padding, the slot directory); overhead is mapped vs the cap.
        let factor = mapped as f64 / LIVE_CAP as f64;
        worst = worst.max(factor);
        println!("{:<4} {:>14} {:>14} {:>9.2}x", w.name, live, mapped, factor);
    }
    // The heap never returns frames to the pool, so mapped is a high-water
    // mark across all four workloads — the bound below is cumulative.
    assert!(
        worst < 8.0,
        "heap-mapped overhead {worst:.2}x across Table-1 churn — fragmentation regression"
    );
    let residual = global::with_allocator(|a| {
        a.quiesce();
        a.live_bytes()
    })
    .expect("initialized");
    println!("\nresidual live after full teardown: {residual} B (slot directory)");
    // After freeing every object, what stays live is the front end's slot
    // directory: one 4 KiB page per 255 objects at the peak (~250k small
    // objects under the W1–W4 caps ⇒ ~4 MiB), retained for reuse.
    assert!(residual <= 8 << 20, "leak: {residual} B live after freeing every object");
    println!("ok (worst overhead {worst:.2}x over a {} MiB live cap)", LIVE_CAP >> 20);
}
