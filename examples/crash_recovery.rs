//! Crash-recovery demo: build a persistent linked list, kill the power at
//! a random moment, recover, and verify that (a) the prefix reachable from
//! the root survived intact and (b) no memory leaked — for both
//! consistency variants.
//!
//! Run with: `cargo run --example crash_recovery`

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig, Variant};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn run(variant: Variant) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = match variant {
        Variant::Log => NvConfig::log(),
        Variant::Gc => NvConfig::gc(),
        Variant::Internal => NvConfig::internal(),
    };
    println!("== {} ==", cfg.tag());
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg.clone())?;
    let mut t = alloc.thread();

    // Build a list of 5 000 nodes: node k+1 is allocated directly into
    // node k's next-pointer, so the attach is atomic.
    let n = 5_000usize;
    let mut dest = alloc.root_offset(0);
    for i in 0..n {
        let node = t.malloc_to(64, dest)?;
        pool.write_u64(node, 0); // next
        pool.write_u64(node + 8, i as u64); // payload
        pool.charge_store(t.pm_mut(), node, 16);
        pool.flush(t.pm_mut(), node, 16, FlushKind::Data);
        pool.flush(t.pm_mut(), dest, 8, FlushKind::Data);
        pool.fence(t.pm_mut());
        dest = node;
    }
    println!("built a {n}-node persistent list; pulling the plug …");

    // Power failure.
    let rebooted = PmemPool::from_crash_image(pool.crash());
    let (alloc2, report) = NvAllocator::recover(Arc::clone(&rebooted), cfg)?;
    println!(
        "recovered: normal_shutdown={}, slabs={}, wal_replayed={}, gc_live={}, leaks_fixed={}",
        report.normal_shutdown,
        report.slabs,
        report.wal_replayed,
        report.gc_live_blocks,
        report.leaks_fixed
    );

    // Walk the list: every reachable node must be intact.
    let mut node = rebooted.read_u64(alloc2.root_offset(0));
    let mut count = 0usize;
    while node != 0 {
        assert_eq!(rebooted.read_u64(node + 8), count as u64, "payload corrupt");
        node = rebooted.read_u64(node);
        count += 1;
    }
    println!("walked {count}/{n} nodes intact after recovery");
    assert_eq!(count, n, "every committed node survived");

    // Free the whole list through the recovered allocator: no leaks.
    let mut t2 = alloc2.thread();
    let dest = alloc2.root_offset(0);
    while rebooted.read_u64(dest) != 0 {
        let node = rebooted.read_u64(dest);
        let next = rebooted.read_u64(node);
        t2.free_from(dest)?;
        // free_from cleared dest; relink to continue walking.
        if next != 0 {
            rebooted.write_u64(dest, next);
        }
    }
    println!("freed everything; live bytes = {}\n", alloc2.live_bytes());
    assert_eq!(alloc2.live_bytes(), 0);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(Variant::Log)?;
    run(Variant::Gc)?;
    run(Variant::Internal)?;
    Ok(())
}
