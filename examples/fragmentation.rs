//! Fragmentation demo: the paper's motivating W1 workload (Table 1) run
//! against static slab segregation (PMDK-like) and NVAlloc with slab
//! morphing, printing the peak-memory difference and NVAlloc's
//! slab-occupancy histogram.
//!
//! Run with: `cargo run --release --example fragmentation`

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::fragbench::{self, Params, TABLE1};

fn main() {
    let w = TABLE1[0]; // W1: fixed 100 B → delete 90 % → fixed 130 B
    let p = Params { total_bytes: 64 << 20, live_cap: 16 << 20, seed: 7 };
    println!(
        "Fragbench {}: before={:?}, delete {:.0} %, after={:?}; live cap {} MiB\n",
        w.name,
        w.before,
        w.delete_ratio * 100.0,
        w.after,
        p.live_cap >> 20
    );

    println!("{:<24} {:>14} {:>10}", "allocator", "peak MiB", "x live");
    for which in [Which::Pmdk, Which::Makalu] {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(1 << 30).latency_mode(LatencyMode::Off));
        let a = which.create_with_roots(pool, 1 << 20);
        let r = fragbench::run(&a, w, p);
        println!(
            "{:<24} {:>14.1} {:>10.2}",
            which.name(),
            r.peak_mapped as f64 / (1 << 20) as f64,
            r.overhead_factor(p.live_cap)
        );
    }
    for morphing in [false, true] {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(1 << 30).latency_mode(LatencyMode::Off));
        let nv = Arc::new(
            NvAllocator::create(pool, NvConfig::log().morphing(morphing).roots(1 << 20))
                .expect("create"),
        );
        let dyn_a: Arc<dyn PmAllocator> = nv.clone();
        let r = fragbench::run(&dyn_a, w, p);
        let label = if morphing { "NVAlloc-LOG (morphing)" } else { "NVAlloc-LOG (w/o SM)" };
        println!(
            "{:<24} {:>14.1} {:>10.2}",
            label,
            r.peak_mapped as f64 / (1 << 20) as f64,
            r.overhead_factor(p.live_cap)
        );
        if morphing {
            let u = nv.slab_utilization(&[0.3, 0.7]);
            println!(
                "\nNVAlloc slab occupancy: {} slabs <30 %, {} in 30-70 %, {} >70 %",
                u.counts[0], u.counts[1], u.counts[2]
            );
        }
    }
    println!("\nSlab morphing turns the 90 %-empty 112 B slabs into 160 B slabs instead");
    println!("of leaving them stranded — the Fig. 1b / Fig. 15 effect.");
}
