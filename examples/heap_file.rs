//! Heap files: durability across process runs. Builds a small persistent
//! database (FPTree over NVAlloc), shuts down cleanly, saves the heap to a
//! file, then "restarts" — reopening the file, recovering the allocator,
//! and rebuilding the tree's volatile index.
//!
//! Run with: `cargo run --release --example heap_file`

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_fptree::FpTree;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut path = std::env::temp_dir();
    path.push(format!("nvalloc-demo-heap-{}.img", std::process::id()));

    // ---- first "run": create, populate, exit, save ----
    {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off));
        let alloc: Arc<dyn PmAllocator> =
            Arc::new(NvAllocator::create(Arc::clone(&pool), NvConfig::log())?);
        let tree = FpTree::new(Arc::clone(&alloc), 128)?;
        let mut s = tree.session();
        for k in 0..10_000u64 {
            s.insert(k, k * k % 97)?;
        }
        for k in (0..10_000u64).step_by(7) {
            s.remove(k)?;
        }
        drop(s);
        alloc.exit(); // orderly shutdown: flush what recovery reads
        pool.save_heap_file(&path, false)?;
        println!("run 1: stored {} keys, heap saved to {}", tree.len(), path.display());
    }

    // ---- second "run": open, recover, verify ----
    {
        let pool =
            PmemPool::open_heap_file(&path, PmemConfig::default().latency_mode(LatencyMode::Off))?;
        let (alloc, report) = NvAllocator::recover(Arc::clone(&pool), NvConfig::log())?;
        println!(
            "run 2: recovered (normal_shutdown={}, slabs={}, extents={})",
            report.normal_shutdown, report.slabs, report.extents
        );
        let alloc: Arc<dyn PmAllocator> = Arc::new(alloc);
        let tree = FpTree::reopen(Arc::clone(&alloc), 128)?;
        let mut s = tree.session();
        let mut present = 0;
        for k in 0..10_000u64 {
            let expect = if k % 7 == 0 { None } else { Some(k * k % 97) };
            assert_eq!(s.get(k), expect, "key {k}");
            if expect.is_some() {
                present += 1;
            }
        }
        println!("run 2: verified {present} keys intact after reopen");
        // Still fully operational.
        s.insert(1_000_000, 42)?;
        assert_eq!(s.get(1_000_000), Some(42));
        println!("run 2: new inserts work; done");
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
