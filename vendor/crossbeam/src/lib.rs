//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims. Only the surface the workspace uses is provided:
//! [`channel::bounded`] — a blocking bounded MPMC channel built on
//! `Mutex` + `Condvar`.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        /// Signalled when an item is enqueued or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when an item is dequeued.
        not_full: Condvar,
        cap: usize,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.senders -= 1;
            if q.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        ///
        /// # Errors
        /// This shim never observes receiver disconnection (receivers are
        /// cloneable and the workspace keeps one alive), so it always
        /// succeeds; the `Result` mirrors the real API.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().expect("channel lock");
            while q.items.len() >= self.0.cap {
                q = self.0.not_full.wait(q).expect("channel lock");
            }
            q.items.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Send `value` without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when the channel is at capacity (this
        /// shim never observes receiver disconnection; see
        /// [`Sender::send`]).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if q.items.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            q.items.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive one value, blocking while the channel is empty.
        ///
        /// # Errors
        /// [`RecvError`] once the channel is empty and all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.0.not_empty.wait(q).expect("channel lock");
            }
        }

        /// Receive one value without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued;
        /// [`TryRecvError::Disconnected`] once additionally every sender
        /// is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if let Some(v) = q.items.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if q.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    /// Create a bounded channel holding at most `cap` items (`cap` ≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_preserves_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn blocks_at_capacity_until_drained() {
            let (tx, rx) = bounded(2);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            h.join().unwrap();
        }

        #[test]
        fn try_ops_never_block() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_errors_when_senders_gone() {
            let (tx, rx) = bounded::<u32>(2);
            let tx2 = tx.clone();
            tx2.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
