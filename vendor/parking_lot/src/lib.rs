//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims over `std`. Only the surface the workspace uses is
//! provided: [`Mutex`] and [`RwLock`] with non-poisoning guards.
//!
//! Semantic differences from the real crate: lock poisoning is swallowed
//! (a panicked holder does not poison — matching parking_lot semantics),
//! and there is no fairness/eventual-fairness machinery.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
