//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims. This one runs each benchmark closure for the
//! configured measurement time and prints a mean per-iteration wall-clock
//! figure — no statistics, plots, or outlier analysis.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value blocker (prevents the optimiser from deleting a result).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function/group name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }

    /// Parameter-only id (the group provides the name).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    /// (total elapsed, iterations) recorded by the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Run `f` repeatedly for the configured measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        // Check the clock once per batch to keep timer overhead out of
        // short benchmarks.
        let batch = 64;
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Set the nominal sample count (kept for API compatibility; this shim
    /// uses it only to scale the measurement window).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.measurement_time, name, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id);
        run_one(self.criterion.measurement_time, &label, |b| f(b, input));
        self
    }

    /// Benchmark `f`, labelled by `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.group, name);
        run_one(self.criterion.measurement_time, &label, f);
        self
    }

    /// End the group (no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(measurement_time: Duration, label: &str, mut f: F) {
    let mut b = Bencher { measurement_time, result: None };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<50} {per_iter:>12.1} ns/iter ({iters} iters)");
        }
        _ => println!("{label:<50} (no measurement)"),
    }
}

/// Declare a benchmark group: either `criterion_group!(name, target…)` or
/// the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default().sample_size(10).measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("x", 4), &4, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 8).to_string(), "a/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
