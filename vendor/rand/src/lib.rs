//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims. Only the surface the workspace uses is provided:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, like the real
//! `SmallRng` on 64-bit targets), the [`Rng`]/[`SeedableRng`] traits with
//! `gen`, `gen_bool` and `gen_range`, and [`seq::SliceRandom::shuffle`].
//!
//! All generators are deterministic functions of their seed; the exact
//! stream differs from upstream `rand`, which only shifts *which*
//! deterministic workload sequence the benchmarks run, not any property
//! they measure.

#![warn(missing_docs)]

/// A seedable random-number generator (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-sampling support for `Rng::gen_range` argument types. The
/// output type parameter lets integer literals in range expressions infer
/// their type from the call site, as with upstream `rand`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by `Rng::gen` (the `Standard` distribution analogue).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Random-value generation (the subset of `rand::Rng` the workspace uses).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, matching the real `SmallRng`'s 64-bit choice.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` used here).
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(8usize..2500);
            assert!((8..2500).contains(&x));
            let y = r.gen_range(3u64..=7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes_and_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
