//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims. This one provides the property-testing surface
//! the workspace uses: the [`Strategy`] trait (`prop_map`, ranges, tuples,
//! [`Just`], `any::<T>()`, weighted unions), [`collection::vec`] /
//! [`collection::btree_set`], and the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and the value stream is a deterministic function of
//! the test name and case index rather than a persisted failure file. Both
//! keep failures reproducible, which is what the test-suite relies on.

#![warn(missing_docs)]

use std::fmt;

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the harness derives seeds from the test name
    /// and case index so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_B00C }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test name, used to derive per-test seeds.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Failure raised by `prop_assert*!` or returned from test bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The input was rejected (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Harness configuration consumed by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Kept for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased alternatives (see `prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total");
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuples {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuples! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy for ordered sets with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times
            // like upstream so small domains still reach the target size.
            let mut tries = 0usize;
            while out.len() < n && tries < n * 32 + 64 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// An ordered set of `element` values with size in `size` (best effort
    /// for small domains).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }
}

/// Glob import that brings the macros, traits and common types in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a property, failing the case (not panicking)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "{} ({:?} vs {:?})",
            format!($($fmt)*), left, right
        );
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "{} != {} failed: both {:?}",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "{} (both {:?})",
            format!($($fmt)*), left
        );
    }};
}

/// Weighted (`w => strategy`) or uniform (`strategy, …`) choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Declare property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0u64..100, ys in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));)+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed at case {case}: {msg}\ninputs: {inputs}",
                        stringify!($name),
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let u = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::new(7);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "weight-9 arm should dominate (got {ones})");
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let (a, b) = (3u64..10, 1usize..=4).generate(&mut rng);
            assert!((3..10).contains(&a));
            assert!((1..=4).contains(&b));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_on_large_domain() {
        let s = crate::collection::btree_set(0u64..1_000_000, 10..11);
        let mut rng = TestRng::new(3);
        assert_eq!(s.generate(&mut rng).len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn harness_runs_bodies(x in 0u32..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            if flip {
                return Ok(());
            }
            prop_assert_ne!(x, 100);
            prop_assert_eq!(x + 1, x + 1);
        }
    }

    #[test]
    fn seeds_differ_by_case_and_name() {
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
        assert_eq!(crate::seed_for("a", 5), crate::seed_for("a", 5));
    }
}
